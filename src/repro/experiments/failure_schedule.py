"""Failure-schedule scenario family: crashes, takeovers and partitions.

The paper's model is failure-free; this scenario family probes what the
reproduction adds on top of it — broker crash/restart with routing-state
recovery (:mod:`repro.broker.recovery`), durable subscriptions, and
deterministic fault schedules (:class:`repro.runtime.faults.FaultModel`).
Two scenarios:

* **crash/restart** (:func:`run_crash_restart`) — a durable subscriber's
  border broker goes dark mid-workload.  Nobody scripts the takeover:
  the heartbeat/lease failure detector
  (:class:`repro.broker.network.FailureDetector`) observes the missed
  leases and the detecting neighbour adopts the orphaned clients,
  replaying its retained in-flight forwarding window so notifications
  that died *inside* the crashed broker still reach the durable
  subscribers.  The broker then restarts from snapshot + journal replay
  with byte-identical routing tables and the clients re-home through the
  ordinary relocation protocol.  The acceptance bar: the crash is
  *detected* (not assumed), no durable subscriber permanently loses a
  matching notification — including the publish round fired while the
  frames to the dead broker were still in flight — no duplicates reach
  the application, and the recovered tables equal the pre-crash ones
  byte for byte.  With ``FailureScheduleConfig.storage_dir`` set the
  recovery stores are disk-backed
  (:class:`repro.broker.recovery.DiskRecoveryStore`); the report must
  not change.
* **partition window** (:func:`run_partition`) — a scheduled link-down
  window silently eats notifications in flight to a *plain* (at-most-
  once) subscriber.  The bar here is *attribution*, not zero loss: every
  missing delivery must be explained by a ``"partition"`` drop record in
  the trace, none guessed.

``run()`` executes both and is what the experiment runner reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.broker.base import BrokerConfig
from repro.broker.recovery import DiskRecoveryStore, RecoveryStore, encode_table
from repro.experiments.backends import build_network
from repro.filters.filter import Filter
from repro.messages.base import MessageKind
from repro.metrics.blackout import measure_node_loss_blackout
from repro.metrics.qos import check_completeness, check_fifo, check_no_duplicates
from repro.metrics.recovery import RecoveryReport, dropped_by_reason, recovery_report
from repro.runtime.factory import RuntimeFactory
from repro.runtime.faults import FaultModel
from repro.sim.rng import DeterministicRandom
from repro.topology.builders import line_topology


@dataclass
class FailureScheduleConfig:
    """Knobs shared by the scenario family."""

    latency: float = 0.05
    notifications_per_phase: int = 5
    #: Crash scenario: length of the broker line (crash at one end).
    brokers: int = 4
    #: Partition scenario: spacing between publishes, and which publish
    #: indexes the link-down window should straddle.
    publish_gap: float = 0.2
    partition_span: Tuple[int, int] = (2, 4)
    seed: int = 11
    #: Crash scenario: heartbeat beacon spacing and the lease a silent
    #: neighbour is allowed before it is suspected.  The detection
    #: window bounds the detector's tick schedule (both clocks consume
    #: a pre-scheduled tick list, so the schedule must be finite).
    heartbeat_interval: float = 0.5
    lease_timeout: float = 1.2
    detection_window: float = 2.0
    #: Per-neighbour in-flight retention window (unacked forwarded
    #: notifications a broker keeps for takeover replay).
    retention_window: int = 32
    #: Root directory for disk-backed recovery stores (``None``: the
    #: in-memory store).
    storage_dir: Optional[str] = None


@dataclass
class CrashRestartResult:
    """Outcome of the crash / takeover / restart / re-home walk-through."""

    delivered_total: int
    expected_total: int
    tables_identical: bool
    log_replayed: int
    complete: bool
    no_duplicates: bool
    fifo: bool
    counterpart_garbage_collected: bool
    detection_time: Optional[float]
    detected_by: Optional[str]
    report: RecoveryReport

    @property
    def detected(self) -> bool:
        """Did a lease observer (not the script) notice the crash?"""
        return self.detection_time is not None

    @property
    def durable_guarantees_hold(self) -> bool:
        """Detected crash, zero loss, exactly-once, FIFO, identical recovery."""
        return (
            self.detected
            and self.complete
            and self.no_duplicates
            and self.fifo
            and self.tables_identical
            and self.report.durable_zero_loss
            and self.counterpart_garbage_collected
        )

    def format_text(self) -> str:
        """Render the walk-through summary."""
        if self.detected:
            detection = "by {} at t={:.3f}".format(self.detected_by, self.detection_time)
        else:
            detection = "never observed"
        lines = [
            "crash/restart with durable subscribers",
            "  delivered / expected:        {} / {}".format(
                self.delivered_total, self.expected_total
            ),
            "  crash detected:              {}".format(detection),
            "  journal records replayed:    {}".format(self.log_replayed),
            "  recovered tables identical:  {}".format(self.tables_identical),
            "  retained forwards replayed:  {}".format(self.report.retention_replayed),
            "  durable deliveries lost:     {}".format(self.report.deliveries_lost),
            "  duplicates suppressed:       {}".format(self.report.duplicates_suppressed),
            "  sequence gaps detected:      {}".format(self.report.gaps_detected),
            "  unfilled gap ranges:         {}".format(self.report.gap_ranges),
            "  dropped while down:          {}".format(self.report.dropped_while_down),
            "  completeness:                {}".format(self.complete),
            "  no duplicates:               {}".format(self.no_duplicates),
            "  sender FIFO:                 {}".format(self.fifo),
            "  counterparts collected:      {}".format(self.counterpart_garbage_collected),
        ]
        return "\n".join(lines)


@dataclass
class PartitionResult:
    """Outcome of the scheduled link-partition scenario."""

    published: int
    delivered: int
    lost: int
    dropped: Dict[str, int] = field(default_factory=dict)

    @property
    def loss_fully_attributed(self) -> bool:
        """Some loss occurred and every bit of it has a partition drop record."""
        return self.lost > 0 and self.lost == self.dropped.get("partition", 0)

    def format_text(self) -> str:
        """Render the attribution summary."""
        lines = [
            "scheduled link partition (plain subscriber)",
            "  published / delivered:       {} / {}".format(self.published, self.delivered),
            "  lost:                        {}".format(self.lost),
            "  drops by reason:             {}".format(self.dropped),
            "  loss fully attributed:       {}".format(self.loss_fully_attributed),
        ]
        return "\n".join(lines)


@dataclass
class FailureScheduleResult:
    """Both scenarios of the family."""

    crash_restart: CrashRestartResult
    partition: PartitionResult

    @property
    def passed(self) -> bool:
        """Both scenarios meet their acceptance bars."""
        return (
            self.crash_restart.durable_guarantees_hold
            and self.partition.loss_fully_attributed
        )

    def format_text(self) -> str:
        """Render both scenario summaries."""
        return self.crash_restart.format_text() + "\n" + self.partition.format_text()


def run_crash_restart(
    config: FailureScheduleConfig = FailureScheduleConfig(),
    runtime_factory: Optional[RuntimeFactory] = None,
) -> CrashRestartResult:
    """Crash a border broker mid-workload; detect, fail over, restart, re-home."""
    edge = "B{}".format(config.brokers)
    network = build_network(
        line_topology(config.brokers),
        strategy="covering",
        latency=config.latency,
        runtime_factory=runtime_factory,
        config=BrokerConfig(forward_retention=config.retention_window),
    )
    store_factory: Optional[Callable[[str], RecoveryStore]] = None
    if config.storage_dir is not None:
        storage_dir = config.storage_dir
        store_factory = lambda name: DiskRecoveryStore(name, storage_dir)  # noqa: E731
    network.enable_recovery(store_factory=store_factory)

    producer = network.add_client("producer", edge)
    producer.advertise({"topic": "news"})
    consumer = network.add_client("consumer", "B1")
    consumer.subscribe({"topic": "news"}, subscription_id="s1", durable=True)
    network.settle()

    # Checkpoint now, then add more admin traffic so the restart has to
    # replay a journal *tail* on top of the snapshot.
    network.snapshot_broker("B1")
    late = network.add_client("late", "B1")
    late.subscribe({"topic": "news"}, subscription_id="s2", durable=True)
    network.settle()

    def publish_round(tag: str) -> None:
        for index in range(config.notifications_per_phase):
            producer.publish({"topic": "news", "phase": tag, "index": index})

    publish_round("before-crash")
    network.settle()

    border = network.broker("B1")
    pre_tables = (
        encode_table(border.subscription_table),
        encode_table(border.advertisement_table),
    )
    # Nobody scripts the takeover from here on: the lease detector has
    # to notice the silence.  The publish round fired immediately after
    # the crash is still in flight toward the dead broker — those
    # notifications die inside it, and only the upstream neighbour's
    # retained forwarding window can bring them back at takeover.
    detector = network.enable_failure_detection(
        config.heartbeat_interval,
        config.lease_timeout,
        until=network.now + config.detection_window,
    )
    crash_time = network.now
    network.crash_broker("B1")
    publish_round("in-flight")
    network.settle()

    publish_round("while-down")
    network.settle()

    restart_time = network.now
    network.restart_broker("B1")
    network.settle()
    tables_identical = pre_tables == (
        encode_table(border.subscription_table),
        encode_table(border.advertisement_table),
    )

    consumer.move_to(border)
    late.move_to(border)
    network.settle()
    publish_round("after-restart")
    network.settle()

    filter_ = Filter({"topic": "news"})
    complete = all(
        check_completeness(network.trace, client_id, filter_).complete
        for client_id in ("consumer", "late")
    )
    no_duplicates = all(
        check_no_duplicates(network.trace, client_id).clean
        for client_id in ("consumer", "late")
    )
    fifo = all(
        check_fifo(network.trace, client_id).ordered for client_id in ("consumer", "late")
    )
    node_loss = measure_node_loss_blackout(
        network.trace, "consumer", filter_, crash_time, restore_time=restart_time
    )
    redelivered = sum(
        record.replayed
        for broker in network.brokers.values()
        for record in broker.relocation_records
    )
    retention_replayed = sum(
        broker.counters.get("retention_replayed", 0)
        for broker in network.brokers.values()
    )
    report = recovery_report(
        border,
        network.trace,
        crash_time,
        restart_time,
        clients=(consumer, late),
        deliveries_lost=node_loss.lost_count,
        redelivered=redelivered,
        retention_replayed=retention_replayed,
    )
    counterparts_collected = not any(
        broker.has_counterparts() for broker in network.brokers.values()
    )
    detection_time: Optional[float] = None
    detected_by: Optional[str] = None
    for time, suspect, observer in detector.detections:
        if suspect == "B1":
            detection_time, detected_by = time, observer
            break
    network.close()
    return CrashRestartResult(
        delivered_total=len(consumer.received) + len(late.received),
        expected_total=2 * 4 * config.notifications_per_phase,
        tables_identical=tables_identical,
        log_replayed=report.log_replayed,
        complete=complete,
        no_duplicates=no_duplicates,
        fifo=fifo,
        counterpart_garbage_collected=counterparts_collected,
        detection_time=detection_time,
        detected_by=detected_by,
        report=report,
    )


def run_partition(
    config: FailureScheduleConfig = FailureScheduleConfig(),
    runtime_factory: Optional[RuntimeFactory] = None,
) -> PartitionResult:
    """Drop notifications to a plain subscriber inside a scheduled window."""
    network = build_network(
        line_topology(3),
        strategy="covering",
        latency=config.latency,
        runtime_factory=runtime_factory,
    )
    fault = FaultModel(DeterministicRandom(config.seed))
    for link in network.links.values():
        link.fault_model = fault

    producer = network.add_client("producer", "B3")
    producer.advertise({"topic": "news"})
    consumer = network.add_client("consumer", "B1")
    consumer.subscribe({"topic": "news"})
    network.settle()

    # The window straddles publishes [start, stop): it opens once the
    # start-th publish is in flight on B2 -> B1 and closes before the
    # stop-th gets there.  The gap dominates the per-hop latency, so the
    # schedule is exact, but the verdict below never assumes it — loss is
    # counted from the trace and matched against the drop records.
    start, stop = config.partition_span
    t0 = network.now
    fault.partition(
        "B2",
        "B1",
        t0 + start * config.publish_gap,
        t0 + stop * config.publish_gap,
    )

    total = config.notifications_per_phase + stop
    for index in range(total):
        producer.publish({"topic": "news", "index": index})
        network.run_for(config.publish_gap)
    network.settle()

    delivered = len(consumer.received)
    dropped = dropped_by_reason(network.trace, kind=MessageKind.NOTIFICATION)
    network.close()
    return PartitionResult(
        published=total,
        delivered=delivered,
        lost=total - delivered,
        dropped=dropped,
    )


def run(
    config: FailureScheduleConfig = FailureScheduleConfig(),
    runtime_factory: Optional[RuntimeFactory] = None,
) -> FailureScheduleResult:
    """Execute the whole scenario family."""
    return FailureScheduleResult(
        crash_restart=run_crash_restart(config, runtime_factory),
        partition=run_partition(config, runtime_factory),
    )


if __name__ == "__main__":  # pragma: no cover - manual / CI invocation helper
    import argparse
    import sys
    import tempfile

    from repro.runtime.factory import BACKENDS
    from repro.runtime.factory import runtime_factory as _factory_for

    parser = argparse.ArgumentParser(description="Run the failure-schedule family.")
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="runtime backend (default: the simulator)",
    )
    parser.add_argument(
        "--disk-store",
        action="store_true",
        help="use disk-backed recovery stores in a temporary directory",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="stream metric snapshots/spans/logs to a live collector "
        "and print its aggregate summary after the report",
    )
    arguments = parser.parse_args()
    factory = None if arguments.backend is None else _factory_for(arguments.backend)

    def _execute():
        if arguments.disk_store:
            with tempfile.TemporaryDirectory() as tmpdir:
                return run(FailureScheduleConfig(storage_dir=tmpdir), factory)
        return run(runtime_factory=factory)

    if arguments.telemetry:
        from repro.telemetry import TcpSink, TelemetryConfig, telemetry_enabled
        from repro.telemetry.collector import TelemetryCollector

        collector = TelemetryCollector()
        host, port = collector.start()
        try:
            config = TelemetryConfig(sink_factory=lambda: TcpSink(host, port))
            with telemetry_enabled(config):
                result = _execute()
        finally:
            collector.stop()
        print(result.format_text())
        print()
        print(collector.aggregate.summary())
        for log in collector.aggregate.log_list():
            print("  [{}] {}@{:.3f}: {}".format(log.level, log.broker, log.time, log.text))
    else:
        result = _execute()
        print(result.format_text())
    sys.exit(0 if result.passed else 1)
