"""Replaying itineraries against a runtime clock.

The driver converts an itinerary into scheduled clock events that call
the corresponding client operations (``set_location`` for logical
mobility, ``detach`` / ``move_to`` for physical roaming).  It also keeps
the realised location timeline, which the epoch-based QoS checker needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.broker.client import Client
from repro.mobility.itinerary import LogicalItinerary, RoamingItinerary, RoamingStep
from repro.runtime.protocols import ScheduledCall

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broker.network import PubSubNetwork


class ItineraryDriver:
    """Schedules the movement of one client on the network's clock.

    The driver depends only on the runtime protocols: it reads and
    schedules through ``network.clock`` (a
    :class:`~repro.runtime.protocols.Clock`) and resolves brokers via
    ``network.broker``, so itineraries replay identically on the
    simulator backend and on the asyncio backend.
    """

    def __init__(self, network: "PubSubNetwork", client: Client) -> None:
        self.network = network
        self.client = client
        self.realised_locations: List[Tuple[float, str]] = []
        self.realised_attachments: List[Tuple[float, Optional[str]]] = []
        #: Handles of every movement step scheduled but not yet applied;
        #: every backend's clock returns a cancellable
        #: :class:`~repro.runtime.protocols.ScheduledCall`.
        self.pending: List[ScheduledCall] = []

    # -- logical mobility ---------------------------------------------------
    def schedule_logical(self, itinerary: LogicalItinerary) -> None:
        """Schedule the ``set_location`` calls of a logical itinerary.

        The first step is applied immediately if its time is not in the
        future (it usually describes the initial location the subscription
        was issued with).
        """
        clock = self.network.clock
        for step in itinerary.steps:
            if step.time <= clock.now:
                self._apply_location(step.location)
            else:
                self.pending.append(
                    clock.schedule_at(
                        step.time,
                        self._apply_location,
                        step.location,
                        label="set_location {}".format(step.location),
                    )
                )

    def _apply_location(self, location: str) -> None:
        self.realised_locations.append((self.network.clock.now, location))
        if self.client.current_location != location or not self.realised_locations[:-1]:
            self.client.set_location(location)

    # -- physical mobility ----------------------------------------------------
    def schedule_roaming(self, itinerary: RoamingItinerary) -> None:
        """Schedule the detach / attach steps of a roaming itinerary."""
        clock = self.network.clock
        for step in itinerary.steps:
            if step.action == RoamingStep.DETACH:
                callback = self._apply_detach
                args: Tuple[Any, ...] = ()
                label = "detach {}".format(self.client.client_id)
            else:
                callback = self._apply_attach
                args = (step.broker,)
                label = "attach {} at {}".format(self.client.client_id, step.broker)
            if step.time <= clock.now:
                callback(*args)
            else:
                self.pending.append(clock.schedule_at(step.time, callback, *args, label=label))

    def _apply_detach(self) -> None:
        self.client.detach()
        self.realised_attachments.append((self.network.clock.now, None))

    def _apply_attach(self, broker_name: str) -> None:
        broker = self.network.broker(broker_name)
        # move_to handles both the very first attachment (plain
        # subscriptions) and genuine relocations (moved subscriptions).
        self.client.move_to(broker)
        self.realised_attachments.append((self.network.clock.now, broker_name))

    # -- cancellation -------------------------------------------------------
    def cancel_pending(self) -> int:
        """Cancel every movement step not yet applied.

        Used to cut an itinerary short (e.g. the scenario crashes the
        client's broker and the rest of the journey no longer makes
        sense).  Cancelling a step that already executed is harmless on
        every backend (the handle has left the queue).  Returns the
        number of handles cancelled by this call.
        """
        cancelled = 0
        for handle in self.pending:
            if not handle.cancelled:
                handle.cancel()
                cancelled += 1
        self.pending.clear()
        return cancelled

    # -- results ------------------------------------------------------------------
    def location_timeline(self) -> List[Tuple[float, str]]:
        """The realised ``(time, location)`` change points."""
        return list(self.realised_locations)

    def attachment_timeline(self) -> List[Tuple[float, Optional[str]]]:
        """The realised ``(time, broker_or_None)`` attachment change points."""
        return list(self.realised_attachments)
