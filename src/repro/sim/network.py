"""Simulated point-to-point links.

The paper assumes "point-to-point, FIFO order communication links, e.g.,
TCP connections, that are error-free, a common assumption that can be
relieved later" (Section 2.1).  :class:`Link` implements exactly that —
a unidirectional FIFO channel with a latency model — plus an optional
:class:`FaultModel` used by robustness tests to "relieve" the error-free
assumption (message drop and duplication injection).

FIFO order is enforced even under a jittering latency model: a message
never overtakes a previously sent one because the delivery time is clamped
to be at least the delivery time of the link's previous message.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.messages.base import Message
from repro.runtime.faults import FaultModel
from repro.runtime.latency import FixedLatency, LatencyModel, UniformLatency
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

__all__ = [
    "FaultModel",
    "FixedLatency",
    "LatencyModel",
    "Link",
    "UniformLatency",
]


class Link:
    """A unidirectional FIFO link from *source* to *target*.

    The *deliver* callback is invoked (via the simulator) with
    ``(message, link)`` once the latency has elapsed.  Bidirectional
    broker connections are modelled as a pair of links created by
    :func:`connect`.

    With ``batch=True`` (the default) the link coalesces its scheduled
    deliveries into per-link *flush* events: each message still gets its
    own latency sample, FIFO clamp and fault decision **at send time**
    (so per-message semantics, RNG draw order and delivery times are
    unchanged), but instead of one simulator event per message the link
    keeps one pending flush event that delivers every queued message
    whose delivery time has been reached, then re-arms for the next one.
    A broker emitting k administrative messages on one link at the same
    instant therefore costs one event, not k — the dominant event-loop
    saving on the routing-churn hot path.  ``batch=False`` restores the
    one-event-per-message behaviour (kept as an equivalence baseline).
    """

    def __init__(
        self,
        simulator: Simulator,
        source: str,
        target: str,
        deliver: Callable[[Message, "Link"], None],
        latency: LatencyModel,
        trace: Optional[TraceRecorder] = None,
        fault_model: Optional[FaultModel] = None,
        batch: bool = True,
    ) -> None:
        self.simulator = simulator
        self.source = source
        self.target = target
        self._deliver = deliver
        self.latency = latency
        self.trace = trace
        self.fault_model = fault_model
        self.batch = batch
        self._last_delivery_time = simulator.now
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.flush_count = 0
        # Messages waiting on the wire: (delivery time, message), FIFO —
        # delivery times are nondecreasing by construction (FIFO clamp).
        self._pending: Deque[Tuple[float, Message]] = deque()
        self._flush_scheduled = False
        # Telemetry hook: called with the link's in-flight depth after
        # each send.  Wired by the network only when telemetry is
        # enabled, so the off path costs one ``is not None`` check.
        self.depth_probe: Optional[Callable[[int], None]] = None
        # Batch-delivery hook: when set, a flush hands the whole due run
        # to this callable (``deliver_batch(messages, link)``) instead of
        # invoking *deliver* once per message, letting the receiver
        # amortise repeated dispatch work across the run (see
        # ``Broker.receive_batch``).  ``None`` keeps per-message delivery.
        self.deliver_batch: Optional[Callable[[List[Message], "Link"], None]] = None

    @property
    def name(self) -> str:
        """Human-readable link identifier ``source->target``."""
        return "{}->{}".format(self.source, self.target)

    def send(self, message: Message) -> None:
        """Queue *message* for delivery after the link latency.

        The traversal is recorded in the trace at send time (this is what
        the message-count experiments tally); dropped messages are still
        counted as sent, matching how a real system would consume network
        bandwidth before the loss.
        """
        self.sent_count += 1
        now = self.simulator.now
        if self.depth_probe is not None:
            self.depth_probe(self.sent_count - self.delivered_count - self.dropped_count)
        if self.trace is not None:
            self.trace.record_link(now, self.source, self.target, message)
        if self.fault_model is not None:
            # Scheduled faults are checked first and consume no RNG draw,
            # so a failure schedule leaves the iid fault stream intact.
            down_reason = self.fault_model.link_down_reason(self.source, self.target, now)
            if down_reason is not None:
                self.dropped_count += 1
                if self.trace is not None:
                    self.trace.record_drop(now, self.source, self.target, message, down_reason)
                return
            if self.fault_model.should_drop():
                self.dropped_count += 1
                if self.trace is not None:
                    self.trace.record_drop(now, self.source, self.target, message, "loss")
                return
        copies = 2 if (self.fault_model is not None and self.fault_model.should_duplicate()) else 1
        for _ in range(copies):
            delay = self.latency.sample()
            delivery_time = max(self.simulator.now + delay, self._last_delivery_time)
            self._last_delivery_time = delivery_time
            if not self.batch:
                self.simulator.schedule_at(
                    delivery_time,
                    self._on_deliver,
                    message,
                    label="deliver {} on {}".format(type(message).__name__, self.name),
                )
                continue
            self._pending.append((delivery_time, message))
            if not self._flush_scheduled:
                # The queue was empty, so this delivery time is the
                # earliest pending one; later sends can only append
                # later-or-equal times (FIFO clamp), so the armed flush
                # time stays the minimum until it fires.
                self._flush_scheduled = True
                self.simulator.schedule_at(
                    delivery_time,
                    self._on_flush,
                    label="flush {}".format(self.name),
                )

    def _on_flush(self) -> None:
        """Deliver every pending message whose time has come, then re-arm."""
        self.flush_count += 1
        now = self.simulator.now
        pending = self._pending
        # Collect the due run first: delivery callbacks only ever send on
        # *other* links (a broker never sends on its own incoming link),
        # so the queue cannot grow mid-run and the split is safe.
        due: List[Message] = []
        while pending and pending[0][0] <= now:
            due.append(pending.popleft()[1])
        self.delivered_count += len(due)
        deliver_batch = self.deliver_batch
        if deliver_batch is not None and len(due) > 1:
            deliver_batch(due, self)
        else:
            for message in due:
                self._deliver(message, self)
        if pending:
            self.simulator.schedule_at(
                pending[0][0], self._on_flush, label="flush {}".format(self.name)
            )
        else:
            self._flush_scheduled = False

    def pending_count(self) -> int:
        """Number of messages currently on the wire (batched mode only)."""
        return len(self._pending)

    def _on_deliver(self, message: Message) -> None:
        self.delivered_count += 1
        self._deliver(message, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Link({})".format(self.name)
