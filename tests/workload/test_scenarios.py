"""Tests for the packaged example scenarios and the experiment runner."""

from repro.experiments import runner
from repro.workload.scenarios import ParkingScenario, SmartBuildingScenario, StockTickerScenario


class TestScenarioConstruction:
    def test_parking_scenario_build_exposes_components(self):
        result = ParkingScenario(horizon=10.0).build()
        assert result.consumer.client_id == "car"
        assert result.producers[0].client_id == "parking-sensors"
        assert result.subscription_id in result.consumer.subscription_ids()
        assert "movement_graph" in result.extra
        assert result.driver is not None

    def test_parking_scenario_plans_are_configurable(self):
        from repro.core.adaptivity import UncertaintyPlan

        plan = UncertaintyPlan.trivial(3)
        result = ParkingScenario(horizon=10.0, plan=plan).build()
        assert result.extra["plan"] is plan

    def test_smart_building_uses_single_border_broker(self):
        result = SmartBuildingScenario(horizon=10.0).build()
        assert result.consumer.border_broker.name == "B1"
        assert result.extra["movement_graph"].locations()

    def test_stock_ticker_roams_across_leaves(self):
        result = StockTickerScenario(horizon=20.0).build()
        itinerary = result.extra["itinerary"]
        assert len(itinerary.brokers_visited()) >= 1

    def test_scenarios_are_deterministic_per_seed(self):
        first = ParkingScenario(horizon=15.0, seed=5).run()
        second = ParkingScenario(horizon=15.0, seed=5).run()
        assert [r.identity for r in first.consumer.received] == [
            r.identity for r in second.consumer.received
        ]

    def test_different_seeds_change_the_workload(self):
        first = ParkingScenario(horizon=15.0, seed=5).run()
        second = ParkingScenario(horizon=15.0, seed=6).run()
        assert [r.identity for r in first.consumer.received] != [
            r.identity for r in second.consumer.received
        ]


class TestExperimentRunner:
    def test_run_all_quick_passes_everything(self):
        outcomes = runner.run_all(quick=True)
        assert len(outcomes) == 9
        failures = [outcome.name for outcome in outcomes if not outcome.passed]
        assert failures == []

    def test_report_formatting(self):
        outcomes = runner.run_all(quick=True)
        report = runner.format_report(outcomes)
        assert "Table 1" in report
        assert "Figure 9" in report
        assert "9 / 9 experiments match the paper" in report

    def test_main_returns_zero_on_success(self, capsys):
        assert runner.main(["--quick"]) == 0
        captured = capsys.readouterr()
        assert "PASS" in captured.out
