"""Quickstart on the asyncio backend: same brokers, real event loop.

This is ``examples/quickstart.py`` with one difference: instead of the
discrete-event simulator the network runs on
:class:`~repro.runtime.aio.AioRuntime` — an asyncio event loop where
every message is serialised through the wire codec into length-prefixed
frames on FIFO byte streams (in-memory pipes here; pass
``AioRuntime(transport="tcp")`` for real loopback TCP sockets).  The
scenario, the relocation guarantees and the delivery trace are identical;
only the clock reads wall time instead of simulated time.

Run with::

    python examples/quickstart_aio.py
"""

from repro import PubSubNetwork, line_topology
from repro.filters.filter import Filter
from repro.metrics.qos import check_completeness, check_fifo, check_no_duplicates
from repro.runtime.aio import AioRuntime


def main() -> None:
    # A chain of four brokers on an asyncio event loop.
    network = PubSubNetwork(line_topology(4), strategy="covering", runtime=AioRuntime())
    try:
        # The producer sits at one end and announces what it publishes.
        producer = network.add_client("ticker", "B4")
        producer.advertise({"type": "quote"})

        # The consumer subscribes at the other end.
        consumer = network.add_client("dashboard", "B1")
        consumer.subscribe({"type": "quote", "symbol": "REBECA"})
        network.settle()  # drain the loop: subscriptions propagate as frames

        # Publish a few matching and non-matching notifications.
        for price in (101.5, 102.0, 99.75):
            producer.publish({"type": "quote", "symbol": "REBECA", "price": price})
        producer.publish({"type": "quote", "symbol": "OTHER", "price": 5.0})
        network.settle()
        print("delivered while connected:", len(consumer.received))

        # The consumer disconnects (e.g. the laptop lid closes) ...
        consumer.detach()
        for price in (98.0, 97.5):
            producer.publish({"type": "quote", "symbol": "REBECA", "price": price})
        network.settle()
        print("buffered at the old border broker while disconnected: 2")

        # ... and reappears at a different border broker.  The middleware
        # relocates the subscription and replays the buffered notifications
        # — over real framed streams this time.
        consumer.move_to(network.broker("B3"))
        producer.publish({"type": "quote", "symbol": "REBECA", "price": 103.25})
        network.settle()

        print("delivered in total:", len(consumer.received))
        for record in consumer.received:
            print(
                "  t={:6.3f}  seq={}  {}".format(
                    record.time, record.sequence, dict(record.notification.attributes)
                )
            )

        # The QoS checkers run on the asyncio trace unchanged.
        watched = Filter({"type": "quote", "symbol": "REBECA"})
        completeness = check_completeness(network.trace, "dashboard", watched)
        duplicates = check_no_duplicates(network.trace, "dashboard")
        fifo = check_fifo(network.trace, "dashboard")
        print("complete:", completeness.complete)
        print("no duplicates:", duplicates.clean)
        print("sender FIFO:", fifo.ordered)
    finally:
        network.close()


if __name__ == "__main__":
    main()
