"""The client library (the paper's *local broker*).

A :class:`Client` offers the four pub/sub primitives of Section 2.1 —
``pub``, ``sub``, ``unsub`` and the ``notify`` callback — plus the two
mobility-facing operations this reproduction adds on top:

* :meth:`Client.move_to` — physical mobility: detach from the current
  border broker (possibly much earlier, via :meth:`Client.detach`) and
  re-attach at a new one.  The client automatically re-issues its
  subscriptions together with the last received sequence numbers, which is
  all the relocation protocol of Section 4 needs.  The *interface* of the
  pub/sub system is unchanged, as the paper requires.
* :meth:`Client.set_location` — logical mobility: declare the client's new
  application-level location so that its location-dependent subscriptions
  (Section 5) adapt automatically.

The client records every delivered notification (with its delivery time
and sequence number), which the QoS checkers and experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.adaptivity import UncertaintyPlan
from repro.core.location_filter import LocationDependentFilter
from repro.core.ploc import MovementGraph
from repro.filters.filter import Filter
from repro.messages.notification import Notification


@dataclass
class ReceivedNotification:
    """One notification as seen by the client (used by tests and experiments)."""

    time: float
    subscription_id: str
    sequence: int
    notification: Notification

    @property
    def identity(self) -> Tuple[str, int]:
        """Global identity of the received notification."""
        return self.notification.identity


class ClientError(RuntimeError):
    """Raised for invalid client operations (e.g. publishing while detached)."""


class Client:
    """A pub/sub client that may roam physically and/or logically."""

    def __init__(
        self,
        client_id: str,
        notify: Optional[Callable[[str, Notification, int], None]] = None,
    ) -> None:
        self.client_id = client_id
        self._notify_callback = notify
        self._broker: Optional[Any] = None  # the current border Broker

        # Subscription bookkeeping (survives detach / re-attach).
        self._subscriptions: Dict[str, Filter] = {}
        self._logical_subscriptions: Dict[str, Dict[str, Any]] = {}
        self._advertisements: Dict[str, Filter] = {}
        self._last_sequence: Dict[str, int] = {}
        # Subscriptions that have been registered with some border broker at
        # least once; only those need the relocation protocol on move_to.
        self._registered_once: set = set()
        # Durable subscriptions: at-least-once delivery with client-side
        # duplicate suppression (see ``deliver``); plain subscriptions
        # keep the at-most-once pass-through behaviour.
        self._durable: set = set()

        # Delivery-quality counters, read by metrics/counters.py:
        # duplicates suppressed and sequence gaps observed on durable
        # subscriptions.
        self.counters: Dict[str, int] = {
            "duplicates_suppressed": 0,
            "gaps_detected": 0,
        }
        # Per-subscription gap ranges: each detected gap records the
        # half-open-on-nothing inclusive range [previous + 1, sequence - 1]
        # of sequence numbers that were skipped.  A later redelivery that
        # falls inside a recorded range *fills* it (shrinking or
        # splitting), so ``unfilled_gap_ranges`` reports what is still
        # actually missing — the observable the in-flight-window fix is
        # verified against.
        self._gap_ranges: Dict[str, List[Tuple[int, int]]] = {}

        # Publishing state.
        self._publish_seq = 0

        # Everything ever delivered to this client, in delivery order.
        self.received: List[ReceivedNotification] = []

        # Logical location (``None`` until set_location is called).
        self.current_location: Optional[str] = None

        self._id_counter = 0

    # ------------------------------------------------------------------
    # Attachment / physical mobility
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        """``True`` when the client currently has a border broker."""
        return self._broker is not None

    @property
    def border_broker(self) -> Optional[Any]:
        """The broker this client is attached to, or ``None``."""
        return self._broker

    def attach(self, broker: Any) -> None:
        """Attach to *broker* for the first time (no relocation handling).

        Existing subscriptions and advertisements are registered as plain
        subscriptions; use :meth:`move_to` when the client has already
        received notifications elsewhere and the relocation protocol should
        run.
        """
        if self._broker is not None:
            raise ClientError("client {} is already attached".format(self.client_id))
        self._broker = broker
        broker.attach_client(self)
        for advertisement_id, filter_ in self._advertisements.items():
            broker.client_advertise(self.client_id, advertisement_id, filter_)
        for subscription_id, filter_ in self._subscriptions.items():
            broker.client_subscribe(self.client_id, subscription_id, filter_)
            self._registered_once.add(subscription_id)
        for subscription_id, spec in self._logical_subscriptions.items():
            broker.client_location_dependent_subscribe(
                self.client_id,
                subscription_id,
                spec["filter"],
                spec["graph"],
                spec["plan"],
                spec["location"],
            )
            self._registered_once.add(subscription_id)

    def detach(self) -> None:
        """Disconnect from the current border broker (power saving, out of range).

        The border broker keeps a virtual counterpart for each subscription
        so no matching notification is lost while the client is away.
        """
        if self._broker is None:
            return
        self._broker.detach_client(self.client_id)
        self._broker = None

    def move_to(self, broker: Any) -> None:
        """Physically roam to a new border broker.

        If still attached somewhere, the client first detaches (it may also
        have detached long ago).  At the new broker every subscription is
        re-issued together with its last received sequence number, which
        triggers the relocation protocol of Section 4.
        """
        if self._broker is broker:
            return
        if self._broker is not None:
            self.detach()
        self._broker = broker
        broker.attach_client(self)
        for advertisement_id, filter_ in self._advertisements.items():
            broker.client_advertise(self.client_id, advertisement_id, filter_)
        for subscription_id, filter_ in self._subscriptions.items():
            if subscription_id in self._registered_once:
                broker.client_moved_subscribe(
                    self.client_id,
                    subscription_id,
                    filter_,
                    self._last_sequence.get(subscription_id, 0),
                )
            else:
                # First ever registration: no old location exists, so a
                # plain subscription suffices.
                broker.client_subscribe(self.client_id, subscription_id, filter_)
                self._registered_once.add(subscription_id)
        for subscription_id, spec in self._logical_subscriptions.items():
            # Logical subscriptions re-register from scratch at the new
            # broker (combining both mobility forms is future work in the
            # paper; re-registration is the conservative behaviour).
            broker.client_location_dependent_subscribe(
                self.client_id,
                subscription_id,
                spec["filter"],
                spec["graph"],
                spec["plan"],
                spec["location"],
            )
            self._registered_once.add(subscription_id)

    def drop_connection(self) -> None:
        """Sever the link to a crashed border broker (no detach handshake).

        Unlike :meth:`detach` this performs no broker-side call — the
        broker is gone, so no virtual counterpart exists.  The client
        keeps its subscription bookkeeping and last sequence numbers;
        use :meth:`move_to` (after the broker restarts) or
        :meth:`failover_to` (neighbour takeover) to reconnect.
        """
        self._broker = None

    def failover_to(self, broker: Any, dead_border: str) -> None:
        """Emergency re-attach after the border broker *dead_border* crashed.

        Durable subscriptions are adopted by the takeover broker via
        :meth:`~repro.broker.base.Broker.takeover_subscribe` (the dead
        broker's routing entries are dropped, no fetch is attempted —
        nothing is left to fetch from).  Plain subscriptions are
        re-issued as fresh subscriptions: at-most-once semantics permit
        the loss of whatever was in flight.
        """
        if self._broker is not None:
            raise ClientError(
                "client {} must drop its connection before failing over".format(
                    self.client_id
                )
            )
        self._broker = broker
        broker.attach_client(self)
        for advertisement_id, filter_ in self._advertisements.items():
            broker.client_advertise(self.client_id, advertisement_id, filter_)
        for subscription_id, filter_ in self._subscriptions.items():
            if subscription_id in self._durable and subscription_id in self._registered_once:
                broker.takeover_subscribe(
                    self.client_id,
                    subscription_id,
                    filter_,
                    self._last_sequence.get(subscription_id, 0),
                    dead_border,
                    seen_identities=self.received_identities(subscription_id),
                )
            else:
                broker.client_subscribe(self.client_id, subscription_id, filter_)
                self._registered_once.add(subscription_id)
        for subscription_id, spec in self._logical_subscriptions.items():
            broker.client_location_dependent_subscribe(
                self.client_id,
                subscription_id,
                spec["filter"],
                spec["graph"],
                spec["plan"],
                spec["location"],
            )
            self._registered_once.add(subscription_id)

    # ------------------------------------------------------------------
    # The four pub/sub primitives
    # ------------------------------------------------------------------
    def subscribe(
        self,
        filter_: Any,
        subscription_id: Optional[str] = None,
        durable: bool = False,
    ) -> str:
        """``sub``: register interest in notifications matching *filter_*.

        *filter_* may be a :class:`~repro.filters.filter.Filter` or a plain
        template mapping.  Returns the subscription identifier.

        With ``durable=True`` the subscription gets at-least-once
        semantics across broker crashes: on reconnect it is re-issued
        with the last received sequence number, redelivered duplicates
        are suppressed client-side (counted in ``counters``), and
        sequence gaps are detected.  Plain subscriptions stay
        at-most-once: whatever arrives is delivered verbatim, including
        the duplicate/miss anomalies the naive-roaming baseline
        deliberately exhibits.
        """
        resolved = filter_ if isinstance(filter_, Filter) else Filter(filter_)
        subscription_id = subscription_id or self._next_id("sub")
        self._subscriptions[subscription_id] = resolved
        self._last_sequence.setdefault(subscription_id, 0)
        if durable:
            self._durable.add(subscription_id)
        if self._broker is not None:
            self._broker.client_subscribe(self.client_id, subscription_id, resolved)
            self._registered_once.add(subscription_id)
        return subscription_id

    def unsubscribe(self, subscription_id: str) -> None:
        """``unsub``: withdraw a subscription (plain or location-dependent)."""
        self._subscriptions.pop(subscription_id, None)
        self._logical_subscriptions.pop(subscription_id, None)
        self._last_sequence.pop(subscription_id, None)
        self._durable.discard(subscription_id)
        if self._broker is not None:
            self._broker.client_unsubscribe(self.client_id, subscription_id)

    def publish(self, attributes: Mapping[str, Any]) -> Notification:
        """``pub``: inject a notification described by *attributes*."""
        if self._broker is None:
            raise ClientError("client {} cannot publish while detached".format(self.client_id))
        self._publish_seq += 1
        notification = Notification(
            attributes=attributes,
            publisher=self.client_id,
            publisher_seq=self._publish_seq,
            publish_time=self._broker.clock.now,
        )
        self._broker.client_publish(self.client_id, notification)
        return notification

    def is_durable(self, subscription_id: str) -> bool:
        """Whether *subscription_id* was registered with ``durable=True``."""
        return subscription_id in self._durable

    def deliver(self, subscription_id: str, notification: Notification, sequence: int) -> None:
        """``notify``: called by the border broker to deliver a notification.

        For durable subscriptions the client enforces the at-least-once
        contract's client-facing half: a sequence number at or below the
        last delivered one is a redelivery and is suppressed (the
        application sees each notification once), and a jump past
        ``last + 1`` is counted as a detected gap (the notification is
        still delivered — gaps are a diagnostic, not a reason to drop
        data).  Plain subscriptions pass everything through verbatim.
        """
        if subscription_id in self._durable:
            previous = self._last_sequence.get(subscription_id, 0)
            if sequence <= previous:
                self.counters["duplicates_suppressed"] += 1
                self._fill_gap(subscription_id, sequence)
                return
            if sequence > previous + 1:
                self.counters["gaps_detected"] += 1
                self._gap_ranges.setdefault(subscription_id, []).append(
                    (previous + 1, sequence - 1)
                )
        time = self._broker.clock.now if self._broker is not None else 0.0
        self.received.append(
            ReceivedNotification(
                time=time,
                subscription_id=subscription_id,
                sequence=sequence,
                notification=notification,
            )
        )
        previous = self._last_sequence.get(subscription_id, 0)
        if sequence > previous:
            self._last_sequence[subscription_id] = sequence
        if self._notify_callback is not None:
            self._notify_callback(subscription_id, notification, sequence)

    # ------------------------------------------------------------------
    # Advertisements
    # ------------------------------------------------------------------
    def advertise(self, filter_: Any, advertisement_id: Optional[str] = None) -> str:
        """Announce the notifications this client is about to publish."""
        resolved = filter_ if isinstance(filter_, Filter) else Filter(filter_)
        advertisement_id = advertisement_id or self._next_id("adv")
        self._advertisements[advertisement_id] = resolved
        if self._broker is not None:
            self._broker.client_advertise(self.client_id, advertisement_id, resolved)
        return advertisement_id

    def unadvertise(self, advertisement_id: str) -> None:
        """Withdraw a previously issued advertisement."""
        self._advertisements.pop(advertisement_id, None)
        if self._broker is not None:
            self._broker.client_unadvertise(self.client_id, advertisement_id)

    # ------------------------------------------------------------------
    # Logical mobility
    # ------------------------------------------------------------------
    def subscribe_location_dependent(
        self,
        template: Mapping[str, Any],
        movement_graph: MovementGraph,
        plan: UncertaintyPlan,
        initial_location: str,
        location_attribute: str = "location",
        vicinity: int = 0,
        subscription_id: Optional[str] = None,
    ) -> str:
        """Register a location-dependent subscription (``location ∈ myloc``).

        *template* is an ordinary filter template; the location attribute
        either carries the :data:`~repro.core.location_filter.MYLOC` marker
        or is omitted and named via *location_attribute*.
        """
        location_filter = LocationDependentFilter(
            template, location_attribute=location_attribute, vicinity=vicinity
        )
        subscription_id = subscription_id or self._next_id("locsub")
        self._logical_subscriptions[subscription_id] = {
            "filter": location_filter,
            "graph": movement_graph,
            "plan": plan,
            "location": initial_location,
        }
        self._last_sequence.setdefault(subscription_id, 0)
        self.current_location = initial_location
        if self._broker is not None:
            self._registered_once.add(subscription_id)
            self._broker.client_location_dependent_subscribe(
                self.client_id,
                subscription_id,
                location_filter,
                movement_graph,
                plan,
                initial_location,
            )
        return subscription_id

    def set_location(self, location: str) -> None:
        """Declare a new application-level location (logical mobility)."""
        self.current_location = location
        for spec in self._logical_subscriptions.values():
            spec["location"] = location
        if self._broker is not None and self._logical_subscriptions:
            self._broker.client_set_location(self.client_id, location)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def last_sequence(self, subscription_id: str) -> int:
        """The highest delivery sequence number seen for a subscription."""
        return self._last_sequence.get(subscription_id, 0)

    def _fill_gap(self, subscription_id: str, sequence: int) -> None:
        """A redelivery arrived for *sequence*: fill it out of any gap range."""
        ranges = self._gap_ranges.get(subscription_id)
        if not ranges:
            return
        filled: List[Tuple[int, int]] = []
        for low, high in ranges:
            if sequence < low or sequence > high:
                filled.append((low, high))
                continue
            if low < sequence:
                filled.append((low, sequence - 1))
            if sequence < high:
                filled.append((sequence + 1, high))
        self._gap_ranges[subscription_id] = filled

    def unfilled_gap_ranges(self, subscription_id: Optional[str] = None) -> List[Tuple[int, int]]:
        """Sequence ranges detected as gaps and never filled by a redelivery.

        With *subscription_id* the ranges of that subscription; without,
        the union across subscriptions, sorted.  An empty list after an
        outage is the durable-subscriber zero-loss witness.
        """
        if subscription_id is not None:
            return sorted(self._gap_ranges.get(subscription_id, []))
        collected: List[Tuple[int, int]] = []
        for ranges in self._gap_ranges.values():
            collected.extend(ranges)
        return sorted(collected)

    def received_identities(self, subscription_id: Optional[str] = None) -> List[Tuple[str, int]]:
        """Identities of all received notifications (optionally one subscription)."""
        return [
            record.identity
            for record in self.received
            if subscription_id is None or record.subscription_id == subscription_id
        ]

    def subscription_ids(self) -> List[str]:
        """All active subscription identifiers (plain and location-dependent)."""
        return sorted(list(self._subscriptions) + list(self._logical_subscriptions))

    def _next_id(self, prefix: str) -> str:
        self._id_counter += 1
        return "{}-{}-{}".format(self.client_id, prefix, self._id_counter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self._broker.name if self._broker is not None else "<detached>"
        return "Client({} @ {}, subs={}, received={})".format(
            self.client_id,
            where,
            len(self._subscriptions) + len(self._logical_subscriptions),
            len(self.received),
        )
