"""Naive physical roaming (the Figure 2 baseline).

"A different, naïve solution to implement physical mobility would be to
use sequences of sub-unsub-sub calls to register a client at a new broker
... during its time of disconnectedness, the client might miss several
notifications or get duplicates, even if notifications are flooded in the
network and the location change is instantaneous." (Section 3.2)

:class:`NaiveRoamingClient` wraps an ordinary :class:`~repro.broker.client.Client`
and performs relocations without any middleware support:

* ``leave()`` — the client walks out of range.  In the *polite* variant it
  manages to unsubscribe first; in the *abrupt* variant (the realistic
  one — "a client may not detect leaving the range of a broker") the old
  subscription simply stays behind and matching notifications delivered
  there are lost.
* ``arrive(broker)`` — the client re-subscribes from scratch at the new
  broker; anything published before the new subscription has propagated is
  missed, and anything already delivered at the old broker *and* again at
  the new one is a duplicate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.broker.base import Broker
from repro.broker.client import Client
from repro.filters.filter import Filter


class NaiveRoamingClient:
    """A roaming consumer that relies only on plain sub/unsub calls."""

    POLITE = "polite"  # unsubscribes before leaving
    ABRUPT = "abrupt"  # leaves without unsubscribing (cannot detect it)

    def __init__(
        self,
        client_id: str,
        filter_: Any,
        variant: str = ABRUPT,
    ) -> None:
        if variant not in (self.POLITE, self.ABRUPT):
            raise ValueError("unknown naive-roaming variant: {!r}".format(variant))
        self.client = Client(client_id)
        self.filter = filter_ if isinstance(filter_, Filter) else Filter(filter_)
        self.variant = variant
        self._subscription_counter = 0
        self._current_subscription: Optional[str] = None

    # -- movement ---------------------------------------------------------
    def arrive(self, broker: Broker) -> str:
        """Attach at *broker* and issue a fresh plain subscription."""
        if self.client.attached:
            self.leave()
        self.client.attach(broker)
        self._subscription_counter += 1
        subscription_id = "naive-{}".format(self._subscription_counter)
        self.client.subscribe(self.filter, subscription_id=subscription_id)
        self._current_subscription = subscription_id
        return subscription_id

    def leave(self) -> None:
        """Walk out of range of the current border broker."""
        broker = self.client.border_broker
        if broker is None:
            return
        if self.variant == self.POLITE and self._current_subscription is not None:
            self.client.unsubscribe(self._current_subscription)
        # No virtual counterpart: the unmodified middleware keeps (or, in
        # the polite variant, has already dropped) the subscription, and
        # whatever it tries to deliver while the client is away is lost.
        broker.detach_client(self.client.client_id, keep_counterpart=False)
        self.client._broker = None  # the client library forgets its local broker
        if self._current_subscription is not None:
            # The client-side library also forgets the subscription so the
            # next arrival registers a fresh one, as the naive scheme does.
            self.client._subscriptions.pop(self._current_subscription, None)
            self._current_subscription = None

    # -- results ---------------------------------------------------------------
    def received_identities(self) -> List[tuple]:
        """Identities of all notifications this client received (any subscription)."""
        return self.client.received_identities()

    def duplicate_identities(self) -> List[tuple]:
        """Identities delivered more than once across the roaming history."""
        seen: Dict[tuple, int] = {}
        for identity in self.client.received_identities():
            seen[identity] = seen.get(identity, 0) + 1
        return [identity for identity, count in seen.items() if count > 1]

    @property
    def client_id(self) -> str:
        """The wrapped client's identifier."""
        return self.client.client_id
