"""Backend parity: the simulator and the asyncio backend must agree.

The same broker code runs under both runtimes; the wire codec and the
framed streams in between must be behaviour-preserving.  Each scenario
here runs once on :class:`~repro.runtime.sim.SimRuntime` and once on
:class:`~repro.runtime.aio.AioRuntime` and must produce **identical
delivery traces**: the same notifications, in the same order, with the
same per-subscription sequence numbers, for every client.  (Timestamps
differ — one clock is simulated, the other real — and are excluded.)
"""

import pytest

from repro.broker.network import PubSubNetwork
from repro.runtime.aio import AioRuntime
from repro.topology.builders import line_topology


def _delivery_trace(network):
    """Time-free view of the delivery trace: per-client, in order."""
    per_client = {}
    for record in network.trace.delivery_records:
        per_client.setdefault(record.client_id, []).append(
            (
                record.subscription_id,
                record.publisher,
                record.publisher_seq,
                record.sequence,
                record.attributes,
            )
        )
    return per_client


def _received(clients):
    return {
        client.client_id: [
            (record.subscription_id, record.sequence, record.identity)
            for record in client.received
        ]
        for client in clients
    }


def _run_on_backends(scenario, topology_size, transport="memory"):
    """Run *scenario* on the simulator and on asyncio; return both results."""
    sim_network = PubSubNetwork(line_topology(topology_size), strategy="covering", latency=0.05)
    sim_result = scenario(sim_network)

    aio_network = PubSubNetwork(
        line_topology(topology_size),
        strategy="covering",
        runtime=AioRuntime(transport=transport),
    )
    try:
        aio_result = scenario(aio_network)
    finally:
        aio_network.close()
    return sim_network, sim_result, aio_network, aio_result


# ---------------------------------------------------------------------------
# Scenario 1: the quickstart (pub/sub + disconnect buffering + relocation)
# ---------------------------------------------------------------------------


def quickstart_scenario(network):
    producer = network.add_client("ticker", "B4")
    producer.advertise({"type": "quote"})
    consumer = network.add_client("dashboard", "B1")
    consumer.subscribe({"type": "quote", "symbol": "REBECA"}, subscription_id="q")
    network.settle()

    for price in (101.5, 102.0, 99.75):
        producer.publish({"type": "quote", "symbol": "REBECA", "price": price})
    producer.publish({"type": "quote", "symbol": "OTHER", "price": 5.0})
    network.settle()

    consumer.detach()
    for price in (98.0, 97.5):
        producer.publish({"type": "quote", "symbol": "REBECA", "price": price})
    network.settle()

    consumer.move_to(network.broker("B3"))
    producer.publish({"type": "quote", "symbol": "REBECA", "price": 103.25})
    network.settle()
    return [consumer, producer]


def test_quickstart_parity_memory_transport():
    sim_network, sim_clients, aio_network, aio_clients = _run_on_backends(
        quickstart_scenario, topology_size=4
    )
    sim_trace = _delivery_trace(sim_network)
    aio_trace = _delivery_trace(aio_network)
    assert aio_trace == sim_trace
    assert _received(aio_clients) == _received(sim_clients)
    # The consumer saw every matching quote exactly once, in order.
    consumer_trace = sim_trace["dashboard"]
    assert [item[3] for item in consumer_trace] == list(range(1, 7))
    assert len(aio_network.trace.link_records) > 0


# ---------------------------------------------------------------------------
# Scenario 2: physical mobility — multi-hop roaming with replay at each hop
# ---------------------------------------------------------------------------


def relocation_scenario(network):
    """A consumer roams B1 -> B3 -> B5 while a producer keeps publishing.

    Each hop triggers the full Section 4 relocation protocol: junction
    discovery, fetch request along the old path, counterpart replay and
    ordered flushing of the new-path buffer.
    """
    producer = network.add_client("press", "B5")
    producer.advertise({"topic": "news"})
    roamer = network.add_client("reader", "B1")
    roamer.subscribe({"topic": "news"}, subscription_id="n")
    bystander = network.add_client("archive", "B2")
    bystander.subscribe({"topic": "news", "priority": ("<", 2)}, subscription_id="a")
    network.settle()

    for index in range(3):
        producer.publish({"topic": "news", "priority": index % 3, "issue": index})
    network.settle()

    # Hop 1: disconnect, miss some notifications, reappear at B3.
    roamer.detach()
    for index in range(3, 6):
        producer.publish({"topic": "news", "priority": index % 3, "issue": index})
    network.settle()
    roamer.move_to(network.broker("B3"))
    network.settle()

    for index in range(6, 8):
        producer.publish({"topic": "news", "priority": index % 3, "issue": index})
    network.settle()

    # Hop 2: roam while attached (no disconnected gap) to B5.
    roamer.move_to(network.broker("B5"))
    network.settle()
    for index in range(8, 10):
        producer.publish({"topic": "news", "priority": index % 3, "issue": index})
    network.settle()
    return [roamer, bystander, producer]


def test_relocation_parity_memory_transport():
    sim_network, sim_clients, aio_network, aio_clients = _run_on_backends(
        relocation_scenario, topology_size=5
    )
    sim_trace = _delivery_trace(sim_network)
    aio_trace = _delivery_trace(aio_network)
    assert aio_trace == sim_trace
    assert _received(aio_clients) == _received(sim_clients)
    # Relocation QoS held on both backends: the roamer received all ten
    # issues exactly once, in publisher order.
    roamer_trace = sim_trace["reader"]
    assert [dict(item[4])["issue"] for item in roamer_trace] == list(range(10))
    assert [item[3] for item in roamer_trace] == list(range(1, 11))


# ---------------------------------------------------------------------------
# TCP transport (real loopback sockets)
# ---------------------------------------------------------------------------


def test_quickstart_parity_tcp_transport():
    try:
        sim_network, sim_clients, aio_network, aio_clients = _run_on_backends(
            quickstart_scenario, topology_size=4, transport="tcp"
        )
    except OSError as error:  # pragma: no cover - sandboxed environments
        pytest.skip("loopback sockets unavailable: {}".format(error))
    assert _delivery_trace(aio_network) == _delivery_trace(sim_network)
    assert _received(aio_clients) == _received(sim_clients)
