"""Matching engine.

Brokers must decide, for every incoming notification, which routing-table
entries (filter, link) it matches.  The straightforward approach evaluates
every filter; for larger tables we index filters by their equality
constraints so that a notification only needs to be evaluated against
filters whose equality constraints it can possibly satisfy.

The index is a candidate-generation engine:

* filters with at least one finite-valued constraint (:class:`Equals`,
  :class:`InSet`, degenerate :class:`Between`) are indexed under
  ``(attribute, canonical value)`` buckets of one chosen anchor
  constraint — selected by the shared selectivity policy
  (:func:`repro.filters.selectivity.pick_anchor`, the same policy the
  covering index uses), which prefers the emptiest buckets so a single
  equality shared by every filter cannot defeat the pruning;
* all remaining filters live in a scan list evaluated for every
  notification.

The engine is deliberately simple but measurably faster than a full scan
for the workloads used in the Figure 9 reproduction, and it is exercised
by a dedicated ablation benchmark.  The broker notification hot path
additionally layers the counting engine of :mod:`repro.dispatch` on top;
this engine remains the routing-table oracle it is checked against.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.filters.attributes import canonical_key
from repro.filters.filter import Filter, MatchNone
from repro.filters.selectivity import pick_anchor


class MatchingEngine:
    """Index a collection of (filter, payload) pairs for fast matching.

    The *payload* is opaque to the engine; routing tables use the link (or
    a set of links) a filter was received from.
    """

    def __init__(self) -> None:
        # filter key -> (filter, set of payloads)
        self._entries: Dict[Tuple[Any, ...], Tuple[Filter, Set[Hashable]]] = {}
        # (attribute, canonical value) -> set of filter keys
        self._equality_index: Dict[Tuple[str, Any], Set[Tuple[Any, ...]]] = defaultdict(set)
        # filter keys with no indexable finite-valued constraint
        self._scan_list: Set[Tuple[Any, ...]] = set()
        # filter key -> tuple of index positions it was registered under
        # (one per accepted anchor value; for removal), or None for the
        # scan list
        self._index_position: Dict[Tuple[Any, ...], Optional[Tuple[Tuple[str, Any], ...]]] = {}

    # -- mutation ---------------------------------------------------------
    def add(self, filter_: Filter, payload: Hashable) -> bool:
        """Register *filter_* with *payload*.

        Returns ``True`` when the filter was not previously present (a new
        entry was created) and ``False`` when only the payload set of an
        existing entry grew.
        """
        if isinstance(filter_, MatchNone):
            return False
        key = self._identity(filter_)
        if key in self._entries:
            _, payloads = self._entries[key]
            payloads.add(payload)
            return False
        self._entries[key] = (filter_, {payload})
        positions = self._pick_index_positions(filter_)
        self._index_position[key] = positions
        if positions is None:
            self._scan_list.add(key)
        else:
            for position in positions:
                self._equality_index[position].add(key)
        return True

    def remove(self, filter_: Filter, payload: Hashable) -> bool:
        """Remove *payload* from *filter_*'s entry.

        The entry itself is removed once its payload set becomes empty.
        Returns ``True`` when something was removed.
        """
        key = self._identity(filter_)
        entry = self._entries.get(key)
        if entry is None:
            return False
        _, payloads = entry
        if payload not in payloads:
            return False
        payloads.discard(payload)
        if not payloads:
            self._drop_entry(key)
        return True

    def remove_filter(self, filter_: Filter) -> bool:
        """Remove a filter entirely, regardless of payloads."""
        key = self._identity(filter_)
        if key not in self._entries:
            return False
        self._drop_entry(key)
        return True

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()
        self._equality_index.clear()
        self._scan_list.clear()
        self._index_position.clear()

    def _drop_entry(self, key: Tuple[Any, ...]) -> None:
        self._entries.pop(key, None)
        positions = self._index_position.pop(key, None)
        if positions is None:
            self._scan_list.discard(key)
        else:
            for position in positions:
                bucket = self._equality_index.get(position)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._equality_index[position]

    # -- queries -----------------------------------------------------------
    def match(self, attributes: Mapping[str, Any]) -> List[Tuple[Filter, Set[Hashable]]]:
        """All (filter, payloads) entries whose filter matches *attributes*."""
        results: List[Tuple[Filter, Set[Hashable]]] = []
        for key in self._candidate_keys(attributes):
            filter_, payloads = self._entries[key]
            if filter_.matches(attributes):
                results.append((filter_, set(payloads)))
        return results

    def matching_payloads(self, attributes: Mapping[str, Any]) -> Set[Hashable]:
        """The union of payloads over all matching filters."""
        out: Set[Hashable] = set()
        for _, payloads in self.match(attributes):
            out |= payloads
        return out

    def filters(self) -> List[Filter]:
        """All registered filters."""
        return [filter_ for filter_, _ in self._entries.values()]

    def payloads_for(self, filter_: Filter) -> Set[Hashable]:
        """The payload set registered for an exact filter, or empty set."""
        entry = self._entries.get(self._identity(filter_))
        if entry is None:
            return set()
        return set(entry[1])

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, filter_: Filter) -> bool:
        return self._identity(filter_) in self._entries

    def __iter__(self) -> Iterator[Tuple[Filter, Set[Hashable]]]:
        for filter_, payloads in self._entries.values():
            yield filter_, set(payloads)

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _identity(filter_: Filter) -> Tuple[Any, ...]:
        return (type(filter_).__name__ == "MatchNone", filter_.key())

    def _pick_index_positions(
        self, filter_: Filter
    ) -> Optional[Tuple[Tuple[str, Any], ...]]:
        """Choose the value buckets to index the filter under.

        Routed through the same selectivity heuristic as the covering
        index anchor (:func:`~repro.filters.selectivity.pick_anchor`): the
        finite-valued constraint with the emptiest current buckets wins,
        so a shared equality no longer funnels every filter into one
        bucket.  A filter anchored on an :class:`InSet` is registered
        under one bucket per accepted value — a notification value can
        reach it through exactly one of them.
        """
        anchor = pick_anchor(filter_, self._bucket_load)
        if anchor is None:
            return None
        name, values = anchor
        return tuple((name, value) for value in values)

    def _bucket_load(self, name: str, value: Any) -> int:
        bucket = self._equality_index.get((name, value))
        return len(bucket) if bucket else 0

    def _candidate_keys(self, attributes: Mapping[str, Any]) -> Iterable[Tuple[Any, ...]]:
        """Filter keys whose indexed anchor constraint the notification may satisfy."""
        seen: Set[Tuple[Any, ...]] = set()
        for name, value in attributes.items():
            try:
                bucket = self._equality_index.get((name, canonical_key(value)))
            except TypeError:
                bucket = None
            if bucket:
                for key in bucket:
                    if key not in seen:
                        seen.add(key)
                        yield key
        for key in self._scan_list:
            if key not in seen:
                seen.add(key)
                yield key
