"""Data-plane benchmark: vectorised vs counting vs linear-scan dispatch.

The control-plane benchmarks (scale, merging) gate how much work a
*routing change* costs; this suite gates how much work a *notification*
costs.  Three implementations coexist behind ``BrokerConfig``:

* **scan** (``indexed_dispatch=False``) — the routing table's candidate
  engine evaluates every candidate filter with ``Filter.matches``, twice
  per notification (once for the forwarding set, once for the local
  rows);
* **counting** (``indexed_dispatch=True, vectorised_dispatch=False``) —
  the broker's ``DispatchPlan`` decomposes all table filters into shared
  predicates and answers both questions in one counting pass with a
  per-filter counter increment per satisfied predicate;
* **vectorised** (the default) — the same predicate index feeds a
  bitset-compiled matcher: satisfied predicates are OR-ed into bit-plane
  counters over big-int filter masks, near-universal predicates are
  lifted out of counting entirely (shared-predicate skipping), and
  batched link flushes reuse match results across identical-attribute
  runs.

All modes must produce **byte-identical behaviour**: the same deliveries
(identities per client), the same admin traffic and the same routing
tables.  Two hard, deterministic criteria during the publish phase:

* the scan/vectorised raw constraint-evaluation ratio is ≥ 5× (the
  original counting-index bar, which vectorisation must not lose), with
  the vectorised mode performing *exactly* the counting mode's residual
  evaluations — the bitset plane changes bookkeeping, not semantics;
* the counting/vectorised ``count_increments`` ratio is ≥ 5× — the
  tentpole criterion: per-filter counter bumps collapse into wide mask
  operations (``mask_ops``), so the vectorised mode performs at least
  5× fewer increments per delivered notification.

Wall-clock numbers (including the Figure 9 publish phase) are recorded
but never gated.  The suite is backend-parameterised
(``--backend {sim,aio-memory,aio-tcp}``); committed baselines are
sim-only.
"""

import time

from repro.broker.base import BrokerConfig
from repro.broker.network import PubSubNetwork
from repro.experiments import fig9_message_counts
from repro.metrics.counters import (
    MessageCounter,
    data_plane_breakdown,
    reset_data_plane_stats,
)
from repro.runtime.factory import make_runtime
from repro.sim.rng import DeterministicRandom
from repro.topology.builders import balanced_tree_topology

LOCATIONS = ["loc-{:02d}".format(index) for index in range(24)]

SUBSCRIBERS_PER_LEAF = 70  # 3 populated leaves -> 210 overlapping subscriptions
PUBLISHES = 200

MODE_CONFIGS = {
    "vectorised": {"indexed_dispatch": True, "vectorised_dispatch": True},
    "counting": {"indexed_dispatch": True, "vectorised_dispatch": False},
    "scan": {"indexed_dispatch": False},
}

# Batching amortisation workload: bursts of identical-attribute
# notifications published at one instant share a link flush run, so the
# receiving broker matches the signature once and replays the result.
BURSTS = 40
BURST_SIZE = 5


def _make_network(mode: str, backend: str, latency: float) -> PubSubNetwork:
    """A covering-strategy network in *mode* on *backend*."""
    topology = balanced_tree_topology(depth=3, fanout=2)
    config = BrokerConfig(**MODE_CONFIGS[mode])
    if backend == "sim":
        return PubSubNetwork(topology, strategy="covering", latency=latency, config=config)
    runtime = make_runtime(backend, latency=latency)
    return PubSubNetwork(topology, strategy="covering", runtime=runtime, config=config)


def _run_publish_workload(mode: str = "vectorised", backend: str = "sim"):
    """Settle an overlapping subscriber population, then publish heavily."""
    network = _make_network(mode, backend, latency=0.005)
    leaves = network.graph.leaves()
    producer = network.add_client("producer", leaves[0])
    producer.advertise({"service": "parking"})
    network.settle()

    rng = DeterministicRandom(17)
    clients = []
    for leaf_index, leaf in enumerate(leaves[1:4]):
        for client_index in range(SUBSCRIBERS_PER_LEAF):
            client = network.add_client("c-{}-{}".format(leaf_index, client_index), leaf)
            span = rng.randint(1, 5)
            start = rng.randint(0, len(LOCATIONS) - span)
            if client_index == 0:
                # One wide "monitor everything parking" subscriber per
                # leaf: its filter has arity 1, which exercises the
                # counting matcher's arity-1 fast path (and the bitset
                # matcher's zero-residual-arity planes) on every publish.
                template = {"service": "parking"}
            else:
                template = {
                    "service": "parking",
                    "location": ("in", LOCATIONS[start : start + span]),
                }
                roll = rng.random()
                if roll < 0.2:
                    template["cost"] = ("<", rng.randint(2, 8))
                elif roll < 0.3:
                    low = rng.randint(0, 4)
                    template["cost"] = ("between", low, low + rng.randint(1, 4))
            client.subscribe(template)
            clients.append(client)
    network.settle()

    # Publish phase: the measured part.
    reset_data_plane_stats()
    started = time.perf_counter()
    for index in range(PUBLISHES):
        producer.publish(
            {
                "service": "parking",
                "location": LOCATIONS[index % len(LOCATIONS)],
                "cost": index % 10,
                "index": index,
            }
        )
    network.settle()
    publish_seconds = time.perf_counter() - started
    stats = data_plane_breakdown(network.brokers.values())

    counter = MessageCounter(network.trace)
    result = {
        "publish_seconds": publish_seconds,
        "constraint_evals": stats["constraint_evals"],
        "filter_matches": stats["filter_matches"],
        "dispatch_matches": stats["dispatch_matches"],
        "count_increments": stats["dispatch_count_increments"],
        "count_increments_per_delivery": stats["dispatch_count_increments_per_delivery"],
        "arity1_fast_matches": stats["dispatch_arity1_fast_matches"],
        "mask_ops": stats["dispatch_mask_ops"],
        "bitset_rebuilds": stats["dispatch_bitset_rebuilds"],
        "predicates_skipped_shared": stats["dispatch_predicates_skipped_shared"],
        "batched_groups": stats["dispatch_batched_groups"],
        "admin_messages": counter.breakdown().admin,
        "advert_gate_hits": stats["advert_gate_hits"],
        "advert_gate_misses": stats["advert_gate_misses"],
        "delivered": sum(len(client.received) for client in clients),
        "received": {c.client_id: c.received_identities() for c in clients},
        "table_sizes": network.routing_table_sizes(),
    }
    network.close()
    return result


def test_dispatch_count_increment_reduction(benchmark, bench_backend):
    """Vectorised dispatch: ≥5× fewer counter bumps, identical behaviour."""
    vectorised = benchmark.pedantic(
        _run_publish_workload, args=("vectorised", bench_backend), iterations=1, rounds=1
    )
    counting = _run_publish_workload("counting", bench_backend)
    scan = _run_publish_workload("scan", bench_backend)

    # Byte-identical data-plane behaviour across all three modes.
    for other in (counting, scan):
        assert vectorised["received"] == other["received"]
        assert vectorised["delivered"] == other["delivered"]
        assert vectorised["admin_messages"] == other["admin_messages"]
        assert vectorised["table_sizes"] == other["table_sizes"]

    delivered = vectorised["delivered"]
    assert delivered > 0
    eval_ratio = scan["constraint_evals"] / max(vectorised["constraint_evals"], 1)
    increment_ratio = counting["count_increments"] / max(vectorised["count_increments"], 1)

    # The bitset plane replaces bookkeeping, not match semantics: the
    # vectorised mode performs exactly the counting mode's residual
    # constraint evaluations.
    assert vectorised["constraint_evals"] == counting["constraint_evals"]

    # Arity-1 fast path (ROADMAP "counting inner loop"): a satisfied
    # predicate whose filter has arity 1 is a match immediately, with no
    # counter bump; each avoided bump is recorded in arity1_fast_matches.
    # The stat belongs to the counting matcher — the bitset matcher has
    # no counters to skip — so it is gated on the counting run: the wide
    # one-constraint subscribers match on every publish, so the skip
    # count must reach at least one per publish.
    assert counting["arity1_fast_matches"] >= PUBLISHES

    # The vectorised data plane actually ran: wide mask operations did
    # the counting, and the near-universal ``service == parking``
    # predicate was lifted out of counting arity entirely.
    assert vectorised["mask_ops"] > 0
    assert vectorised["predicates_skipped_shared"] > 0

    benchmark.extra_info.update(
        {
            "subscriptions": 3 * SUBSCRIBERS_PER_LEAF,
            "publishes": PUBLISHES,
            "delivered": delivered,
            "constraint_evals_vectorised": vectorised["constraint_evals"],
            "constraint_evals_counting": counting["constraint_evals"],
            "constraint_evals_scan": scan["constraint_evals"],
            "constraint_eval_ratio": round(eval_ratio, 1),
            "count_increments": vectorised["count_increments"],
            "count_increments_counting": counting["count_increments"],
            "count_increment_ratio": round(increment_ratio, 1),
            "count_increments_per_delivery": vectorised["count_increments_per_delivery"],
            "count_increments_per_delivery_counting": counting["count_increments_per_delivery"],
            "mask_ops": vectorised["mask_ops"],
            "bitset_rebuilds": vectorised["bitset_rebuilds"],
            "predicates_skipped_shared": vectorised["predicates_skipped_shared"],
            "arity1_fast_matches_counting": counting["arity1_fast_matches"],
            "evals_per_delivery_vectorised": round(vectorised["constraint_evals"] / delivered, 3),
            "evals_per_delivery_scan": round(scan["constraint_evals"] / delivered, 3),
            "filter_matches_scan": scan["filter_matches"],
            "dispatch_matches": vectorised["dispatch_matches"],
            "advert_gate_hits": vectorised["advert_gate_hits"],
            "advert_gate_misses": vectorised["advert_gate_misses"],
            "publish_seconds_vectorised": round(vectorised["publish_seconds"], 4),
            "publish_seconds_counting": round(counting["publish_seconds"], 4),
            "publish_seconds_scan": round(scan["publish_seconds"], 4),
        }
    )
    # The original counting-index acceptance criterion, which the bitset
    # plane must not lose: at least 5× fewer raw constraint evaluations
    # than the scan path.  The observed ratio is far higher (see
    # BENCH_dispatch.json) because the workload's equality/set/range
    # constraints are all answered by bucket lookups and bisections.
    assert eval_ratio >= 5.0
    # The tentpole criterion: per-filter counter increments collapse
    # into wide mask operations — at least 5× fewer increments than the
    # counting mode at unchanged constraint-evaluation counts.  (The
    # pure-bitset path performs none at all; the floor keeps the gate
    # meaningful if a future hybrid reintroduces some.)
    assert increment_ratio >= 5.0


def _run_batched_workload(mode: str = "vectorised", backend: str = "sim"):
    """Publish identical-attribute bursts so link flushes carry runs."""
    network = _make_network(mode, backend, latency=0.005)
    leaves = network.graph.leaves()
    producer = network.add_client("producer", leaves[0])
    producer.advertise({"service": "telemetry"})
    subscribers = []
    for index in range(20):
        client = network.add_client("s-{}".format(index), leaves[-1])
        client.subscribe({"service": "telemetry", "shard": ("<", 1 + index % 8)})
        subscribers.append(client)
    network.settle()

    reset_data_plane_stats()
    started = time.perf_counter()
    for burst in range(BURSTS):
        # Same attributes within a burst, published at one instant: the
        # notifications share delivery times on every broker-broker
        # link, so each flush hands the whole run to receive_batch.
        for _ in range(BURST_SIZE):
            producer.publish({"service": "telemetry", "shard": burst % 8})
        network.settle()
    seconds = time.perf_counter() - started
    stats = data_plane_breakdown(network.brokers.values())
    result = {
        "seconds": seconds,
        "count_increments": stats["dispatch_count_increments"],
        "batched_groups": stats["dispatch_batched_groups"],
        "dispatch_matches": stats["dispatch_matches"],
        "constraint_evals": stats["constraint_evals"],
        "delivered": sum(len(client.received) for client in subscribers),
        "received": {c.client_id: c.received_identities() for c in subscribers},
    }
    network.close()
    return result


def test_dispatch_batching_amortisation(benchmark, bench_backend):
    """Identical-attribute bursts: match once per run, identical deliveries."""
    vectorised = benchmark.pedantic(
        _run_batched_workload, args=("vectorised", bench_backend), iterations=1, rounds=1
    )
    counting = _run_batched_workload("counting", bench_backend)
    scan = _run_batched_workload("scan", bench_backend)

    for other in (counting, scan):
        assert vectorised["received"] == other["received"]
        assert vectorised["delivered"] == other["delivered"]
    assert vectorised["delivered"] > 0
    # Mode-independent residual work.
    assert vectorised["constraint_evals"] == counting["constraint_evals"]

    if bench_backend == "sim":
        # Batched link flushes are a sim-runtime feature (the asyncio
        # channels deliver per message); on sim, every burst's repeated
        # signature must be amortised at least once somewhere.
        assert vectorised["batched_groups"] >= BURSTS
        # ...and the cache hits shrink the dispatch passes themselves:
        # fewer index probes than one-per-notification-per-broker.
        assert vectorised["dispatch_matches"] < counting["dispatch_matches"]

    benchmark.extra_info.update(
        {
            "bursts": BURSTS,
            "burst_size": BURST_SIZE,
            "delivered": vectorised["delivered"],
            "batched_groups": vectorised["batched_groups"],
            "dispatch_matches_vectorised": vectorised["dispatch_matches"],
            "dispatch_matches_counting": counting["dispatch_matches"],
            "burst_seconds_vectorised": round(vectorised["seconds"], 4),
            "burst_seconds_counting": round(counting["seconds"], 4),
        }
    )


def test_fig9_publish_phase_wall_time(benchmark):
    """Figure 9 workload, vectorised vs scan: same messages, recorded wall time."""

    def run(mode):
        reset_data_plane_stats()
        config = fig9_message_counts.Fig9Config(
            horizon=20.0,
            sample_interval=10.0,
            broker_config=BrokerConfig(**MODE_CONFIGS[mode]),
        )
        started = time.perf_counter()
        result = fig9_message_counts.run(config)
        seconds = time.perf_counter() - started
        stats = data_plane_breakdown()
        return {
            "seconds": seconds,
            "constraint_evals": stats["constraint_evals"],
            "totals": {series.label: series.total_messages for series in result.series},
            "delivered": {series.label: series.delivered for series in result.series},
        }

    vectorised = benchmark.pedantic(run, args=("vectorised",), iterations=1, rounds=1)
    scan = run("scan")
    # The dispatch mode must not change a single Figure 9 message count.
    assert vectorised["totals"] == scan["totals"]
    assert vectorised["delivered"] == scan["delivered"]
    benchmark.extra_info.update(
        {
            "fig9_total_messages": sum(vectorised["totals"].values()),
            "fig9_seconds_vectorised": round(vectorised["seconds"], 4),
            "fig9_seconds_scan": round(scan["seconds"], 4),
            "fig9_constraint_evals_vectorised": vectorised["constraint_evals"],
            "fig9_constraint_evals_scan": scan["constraint_evals"],
        }
    )
