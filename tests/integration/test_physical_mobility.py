"""Integration tests of the physical-mobility relocation protocol (Section 4).

The requirements of Section 3.2 are checked end to end: unchanged
interface, completeness, no duplicates, sender-FIFO ordering, and
garbage collection of the old location's resources.
"""

import pytest

from repro.broker.base import BrokerConfig
from repro.broker.network import PubSubNetwork
from repro.filters.filter import Filter
from repro.metrics.qos import check_completeness, check_fifo, check_no_duplicates
from repro.topology.builders import balanced_tree_topology, line_topology
from repro.experiments.fig5_relocation import figure5_topology

WATCHED = {"topic": "news"}


def build(topology, strategy="covering", latency=0.05, config=None):
    network = PubSubNetwork(topology, strategy=strategy, latency=latency, config=config)
    return network


def assert_guarantees(network, client_id="C", filter_=None):
    filter_ = filter_ or Filter(WATCHED)
    completeness = check_completeness(network.trace, client_id, filter_)
    assert completeness.complete, completeness.describe()
    assert check_no_duplicates(network.trace, client_id).clean
    assert check_fifo(network.trace, client_id).ordered


class TestBasicRelocation:
    @pytest.mark.parametrize("strategy", ["simple", "covering", "merging"])
    def test_detach_move_reattach_is_lossless(self, strategy):
        network = build(line_topology(6), strategy=strategy)
        producer = network.add_client("P", "B3")
        producer.advertise(WATCHED)
        consumer = network.add_client("C", "B6")
        consumer.subscribe(WATCHED)
        network.settle()

        for index in range(3):
            producer.publish({"topic": "news", "index": index})
        network.settle()

        consumer.detach()
        for index in range(3, 8):
            producer.publish({"topic": "news", "index": index})
        network.settle()
        assert network.broker("B6").has_counterparts()

        consumer.move_to(network.broker("B1"))
        for index in range(8, 11):
            producer.publish({"topic": "news", "index": index})
        network.settle()

        assert len(consumer.received) == 11
        assert_guarantees(network)
        assert not network.broker("B6").has_counterparts()

    def test_interface_is_unchanged_after_relocation(self):
        """After relocating, plain pub/sub keeps working through the same client object."""
        network = build(line_topology(4))
        producer = network.add_client("P", "B4")
        producer.advertise(WATCHED)
        consumer = network.add_client("C", "B1")
        subscription = consumer.subscribe(WATCHED)
        network.settle()
        consumer.move_to(network.broker("B2"))
        network.settle()
        producer.publish({"topic": "news"})
        network.settle()
        assert consumer.received[-1].subscription_id == subscription
        consumer.unsubscribe(subscription)
        network.settle()
        producer.publish({"topic": "news"})
        network.settle()
        assert len(consumer.received) == 1

    def test_reattach_at_same_broker_replays_locally(self):
        network = build(line_topology(3))
        producer = network.add_client("P", "B3")
        producer.advertise(WATCHED)
        consumer = network.add_client("C", "B1")
        consumer.subscribe(WATCHED)
        network.settle()
        consumer.detach()
        for index in range(4):
            producer.publish({"topic": "news", "index": index})
        network.settle()
        consumer.move_to(network.broker("B1"))
        network.settle()
        assert len(consumer.received) == 4
        assert_guarantees(network)
        assert not network.broker("B1").has_counterparts()

    def test_relocation_without_prior_traffic(self):
        network = build(line_topology(4))
        producer = network.add_client("P", "B4")
        producer.advertise(WATCHED)
        consumer = network.add_client("C", "B1")
        consumer.subscribe(WATCHED)
        network.settle()
        consumer.detach()
        network.settle()
        consumer.move_to(network.broker("B2"))
        network.settle()
        producer.publish({"topic": "news"})
        network.settle()
        assert len(consumer.received) == 1
        assert_guarantees(network)

    def test_moving_while_still_attached(self):
        """move_to without an explicit detach first (handover between access points)."""
        network = build(line_topology(5))
        producer = network.add_client("P", "B3")
        producer.advertise(WATCHED)
        consumer = network.add_client("C", "B5")
        consumer.subscribe(WATCHED)
        network.settle()
        for index in range(3):
            producer.publish({"topic": "news", "index": index})
        network.settle()
        consumer.move_to(network.broker("B1"))
        for index in range(3, 6):
            producer.publish({"topic": "news", "index": index})
        network.settle()
        assert len(consumer.received) == 6
        assert_guarantees(network)


class TestFigure5Scenarios:
    def test_single_producer_walkthrough(self):
        network = build(figure5_topology())
        producer = network.add_client("P", "B3")
        producer.advertise(WATCHED)
        consumer = network.add_client("C", "B6")
        consumer.subscribe(WATCHED)
        network.settle()
        consumer.detach()
        for index in range(5):
            producer.publish({"topic": "news", "index": index})
        network.settle()
        consumer.move_to(network.broker("B1"))
        network.settle()
        assert len(consumer.received) == 5
        assert_guarantees(network)
        # Old border broker garbage-collected its counterpart.
        assert not network.broker("B6").has_counterparts()

    def test_two_producers_walkthrough(self):
        graph = figure5_topology()
        graph.add_edge("B3", "B9")
        network = build(graph)
        producers = []
        for client_id, broker in (("P1", "B3"), ("P2", "B9")):
            producer = network.add_client(client_id, broker)
            producer.advertise(WATCHED)
            producers.append(producer)
        consumer = network.add_client("C", "B6")
        consumer.subscribe(WATCHED)
        network.settle()
        consumer.detach()
        for producer in producers:
            for index in range(4):
                producer.publish({"topic": "news", "index": index})
        network.settle()
        consumer.move_to(network.broker("B1"))
        for producer in producers:
            for index in range(4, 6):
                producer.publish({"topic": "news", "index": index})
        network.settle()
        assert len(consumer.received) == 12
        assert_guarantees(network)


class TestRepeatedRoaming:
    def test_many_consecutive_relocations(self):
        topology = balanced_tree_topology(depth=2, fanout=2)
        network = build(topology, latency=0.02)
        leaves = topology.leaves()
        producer = network.add_client("P", leaves[0])
        producer.advertise(WATCHED)
        consumer = network.add_client("C", leaves[1])
        consumer.subscribe(WATCHED)
        network.settle()

        index = 0
        for hop, target in enumerate(leaves[2:] + leaves[1:3] + leaves[-2:]):
            for _ in range(3):
                producer.publish({"topic": "news", "index": index})
                index += 1
            network.settle()
            consumer.detach()
            for _ in range(2):
                producer.publish({"topic": "news", "index": index})
                index += 1
            network.settle()
            consumer.move_to(network.broker(target))
            network.settle()

        assert len(consumer.received) == index
        assert_guarantees(network)
        assert not any(broker.has_counterparts() for broker in network.brokers.values())

    def test_relocation_with_publications_in_flight(self):
        """Publications racing the relocation control messages are not lost."""
        network = build(line_topology(6), latency=0.1)
        producer = network.add_client("P", "B3")
        producer.advertise(WATCHED)
        consumer = network.add_client("C", "B6")
        consumer.subscribe(WATCHED)
        network.settle()

        # Publish continuously while the client roams, without settling.
        start = network.now
        for index in range(20):
            network.simulator.schedule_at(
                start + 0.05 * index, producer.publish, {"topic": "news", "index": index}
            )
        network.run_until(start + 0.3)
        consumer.detach()
        network.run_until(start + 0.5)
        consumer.move_to(network.broker("B1"))
        network.settle()

        assert len(consumer.received) == 20
        assert_guarantees(network)


class TestBufferLimits:
    def test_bounded_counterpart_drops_oldest_but_keeps_rest(self):
        config = BrokerConfig(counterpart_max_buffer=3)
        network = build(line_topology(4), config=config)
        producer = network.add_client("P", "B4")
        producer.advertise(WATCHED)
        consumer = network.add_client("C", "B1")
        consumer.subscribe(WATCHED)
        network.settle()
        consumer.detach()
        for index in range(10):
            producer.publish({"topic": "news", "index": index})
        network.settle()
        counterpart = network.broker("B1").counterpart_for("C", consumer.subscription_ids()[0])
        assert counterpart.buffered_count() == 3
        assert counterpart.overflowed == 7
        consumer.move_to(network.broker("B2"))
        network.settle()
        # Only the 3 newest survived the bounded buffer; no duplicates though.
        assert len(consumer.received) == 3
        assert check_no_duplicates(network.trace, "C").clean
