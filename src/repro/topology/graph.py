"""Broker graph abstraction and validation."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple


class TopologyError(ValueError):
    """Raised when a broker graph violates the paper's assumptions."""


class BrokerGraph:
    """An undirected graph of broker identifiers.

    The pub/sub model requires the graph to be **acyclic and connected**
    (i.e. a tree); :meth:`validate` enforces this.  The graph only stores
    names — the :mod:`repro.broker.network` module instantiates the actual
    broker processes and links from it.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[str, Set[str]] = {}

    # -- construction -------------------------------------------------------
    def add_broker(self, name: str) -> None:
        """Add a broker node (idempotent)."""
        if not isinstance(name, str) or not name:
            raise TopologyError("broker names must be non-empty strings: {!r}".format(name))
        self._adjacency.setdefault(name, set())

    def add_edge(self, left: str, right: str) -> None:
        """Add an undirected broker-to-broker connection."""
        if left == right:
            raise TopologyError("self-loops are not allowed: {}".format(left))
        self.add_broker(left)
        self.add_broker(right)
        self._adjacency[left].add(right)
        self._adjacency[right].add(left)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]]) -> "BrokerGraph":
        """Build a graph from an iterable of (left, right) pairs."""
        graph = cls()
        for left, right in edges:
            graph.add_edge(left, right)
        return graph

    # -- inspection -----------------------------------------------------------
    def brokers(self) -> List[str]:
        """All broker names, sorted."""
        return sorted(self._adjacency)

    def edges(self) -> List[Tuple[str, str]]:
        """All undirected edges as sorted (left, right) pairs, sorted."""
        seen: Set[Tuple[str, str]] = set()
        for left, neighbours in self._adjacency.items():
            for right in neighbours:
                seen.add(tuple(sorted((left, right))))  # type: ignore[arg-type]
        return sorted(seen)

    def neighbours(self, name: str) -> List[str]:
        """Neighbouring broker names, sorted."""
        if name not in self._adjacency:
            raise TopologyError("unknown broker: {}".format(name))
        return sorted(self._adjacency[name])

    def degree(self, name: str) -> int:
        """Number of neighbours of *name*."""
        return len(self._adjacency.get(name, ()))

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, name: str) -> bool:
        return name in self._adjacency

    # -- validation ----------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`TopologyError` unless the graph is a non-empty tree."""
        if not self._adjacency:
            raise TopologyError("broker graph is empty")
        names = self.brokers()
        edge_count = len(self.edges())
        if edge_count != len(names) - 1:
            raise TopologyError(
                "broker graph must be acyclic and connected (a tree): "
                "{} brokers need {} edges, found {}".format(
                    len(names), len(names) - 1, edge_count
                )
            )
        if not self.is_connected():
            raise TopologyError("broker graph is not connected")

    def is_connected(self) -> bool:
        """``True`` when every broker is reachable from every other."""
        if not self._adjacency:
            return False
        start = next(iter(self._adjacency))
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbour in self._adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self._adjacency)

    # -- path queries -----------------------------------------------------------
    def path(self, source: str, target: str) -> List[str]:
        """The unique path between two brokers (inclusive of both ends)."""
        if source not in self._adjacency or target not in self._adjacency:
            raise TopologyError("unknown broker in path query")
        if source == target:
            return [source]
        parents: Dict[str, Optional[str]] = {source: None}
        frontier = deque([source])
        while frontier:
            current = frontier.popleft()
            for neighbour in sorted(self._adjacency[current]):
                if neighbour not in parents:
                    parents[neighbour] = current
                    if neighbour == target:
                        frontier.clear()
                        break
                    frontier.append(neighbour)
        if target not in parents:
            raise TopologyError("no path between {} and {}".format(source, target))
        path: List[str] = [target]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def distance(self, source: str, target: str) -> int:
        """Hop count between two brokers."""
        return len(self.path(source, target)) - 1

    def leaves(self) -> List[str]:
        """Brokers with exactly one neighbour (candidates for border brokers)."""
        return sorted(name for name in self._adjacency if len(self._adjacency[name]) == 1)

    def diameter(self) -> int:
        """The longest shortest-path (in hops) between any two brokers."""
        names = self.brokers()
        best = 0
        for source in names:
            depths = self._bfs_depths(source)
            best = max(best, max(depths.values()))
        return best

    def _bfs_depths(self, source: str) -> Dict[str, int]:
        depths = {source: 0}
        frontier = deque([source])
        while frontier:
            current = frontier.popleft()
            for neighbour in self._adjacency[current]:
                if neighbour not in depths:
                    depths[neighbour] = depths[current] + 1
                    frontier.append(neighbour)
        return depths
