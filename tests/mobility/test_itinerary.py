"""Unit tests for itineraries and movement models."""

import pytest

from repro.core.ploc import MovementGraph
from repro.mobility.itinerary import LogicalItinerary, LogicalStep, RoamingItinerary, RoamingStep
from repro.mobility.models import cyclic_walk, random_walk, shuttle_roaming
from repro.sim.rng import DeterministicRandom


class TestLogicalItinerary:
    def test_steps_sorted_by_time(self):
        itinerary = LogicalItinerary(
            [LogicalStep(5.0, "b"), LogicalStep(0.0, "a"), LogicalStep(2.0, "c")]
        )
        assert [step.location for step in itinerary.steps] == ["a", "c", "b"]
        assert itinerary.initial_location == "a"
        assert itinerary.end_time == 5.0
        assert len(itinerary) == 3

    def test_from_pairs_and_uniform(self):
        itinerary = LogicalItinerary.from_pairs([(0, "a"), (1, "b")])
        assert itinerary.location_changes()[0].location == "b"
        uniform = LogicalItinerary.uniform(["x", "y", "z"], dwell_time=2.0)
        assert uniform.timeline_pairs() == [(0.0, "x"), (2.0, "y"), (4.0, "z")]

    def test_location_at(self):
        itinerary = LogicalItinerary.from_pairs([(0, "a"), (10, "b")])
        assert itinerary.location_at(5) == "a"
        assert itinerary.location_at(10) == "b"
        assert itinerary.location_at(50) == "b"
        assert itinerary.location_at(-1) == "a"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LogicalItinerary([])
        with pytest.raises(ValueError):
            LogicalItinerary.uniform(["a"], dwell_time=0)


class TestRoamingItinerary:
    def test_from_visits(self):
        itinerary = RoamingItinerary.from_visits([(0, 5, "B1"), (8, float("inf"), "B2")])
        assert itinerary.brokers_visited() == ["B1", "B2"]
        windows = itinerary.connected_windows()
        assert windows == [(0, 5, "B1"), (8, None, "B2")]

    def test_invalid_visit_rejected(self):
        with pytest.raises(ValueError):
            RoamingItinerary.from_visits([(5, 5, "B1")])

    def test_step_validation(self):
        with pytest.raises(ValueError):
            RoamingStep(time=0, action="teleport")
        with pytest.raises(ValueError):
            RoamingStep(time=0, action=RoamingStep.ATTACH)
        with pytest.raises(ValueError):
            RoamingItinerary([])


class TestModels:
    def test_random_walk_respects_movement_graph(self):
        graph = MovementGraph.paper_example()
        walk = random_walk(graph, "a", steps=20, dwell_time=1.0, rng=DeterministicRandom(5))
        assert len(walk) == 21
        pairs = walk.timeline_pairs()
        for (t0, loc0), (t1, loc1) in zip(pairs, pairs[1:]):
            assert t1 - t0 == pytest.approx(1.0)
            assert loc1 == loc0 or loc1 in graph.neighbours(loc0)

    def test_random_walk_is_deterministic_per_seed(self):
        graph = MovementGraph.grid(3, 3)
        left = random_walk(graph, "r0c0", 15, 1.0, DeterministicRandom(9))
        right = random_walk(graph, "r0c0", 15, 1.0, DeterministicRandom(9))
        assert left.timeline_pairs() == right.timeline_pairs()

    def test_random_walk_validation(self):
        graph = MovementGraph.paper_example()
        with pytest.raises(ValueError):
            random_walk(graph, "nowhere", 5, 1.0, DeterministicRandom(1))
        with pytest.raises(ValueError):
            random_walk(graph, "a", -1, 1.0, DeterministicRandom(1))
        with pytest.raises(ValueError):
            random_walk(graph, "a", 5, 0.0, DeterministicRandom(1))

    def test_cyclic_walk(self):
        walk = cyclic_walk(["a", "b"], dwell_time=2.0, cycles=2)
        assert [loc for _, loc in walk.timeline_pairs()] == ["a", "b", "a", "b"]
        assert walk.end_time == 6.0

    def test_shuttle_roaming(self):
        itinerary = shuttle_roaming(["B1", "B2"], connected_time=5.0, disconnected_time=2.0)
        windows = itinerary.connected_windows()
        assert windows[0] == (0.0, 5.0, "B1")
        assert windows[1][0] == pytest.approx(7.0)
        assert windows[1][1] is None  # stays attached at the last broker

    def test_shuttle_roaming_repetitions(self):
        itinerary = shuttle_roaming(["B1", "B2"], 5.0, 2.0, repetitions=2)
        assert itinerary.brokers_visited() == ["B1", "B2", "B1", "B2"]
