"""Control-plane messages: liveness and forwarding reliability.

The paper's system model (Section 2.1) assumes reliable FIFO links and
immortal brokers, so it needs no control traffic at all.  The robustness
layer (docs/robustness.md) breaks both assumptions and adds exactly
three link-local message types:

* :class:`Heartbeat` — periodic ``I am alive`` beacons between directly
  connected brokers; a missed lease (no heartbeat within the timeout)
  is how a neighbour *observes* a crash instead of being told about it.
* :class:`SequencedForward` — a broker→broker notification forward
  wrapped with a per-link sequence number, so the sender can retain the
  payload until the receiver acknowledges having processed it.
* :class:`ForwardAck` — the cumulative acknowledgement releasing every
  retained forward up to ``upto`` on the reverse link.

None of these are routed (they travel exactly one hop) and none are
journaled: heartbeats and acks carry no routing state, and a
``SequencedForward`` is unwrapped into the ordinary notification path on
arrival.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.messages.base import Message, MessageKind
from repro.messages.notification import Notification


class Heartbeat(Message):
    """One liveness beacon from *sender* to a directly connected neighbour."""

    kind = MessageKind.CONTROL

    __slots__ = ("sender", "sent_at")

    def __init__(
        self,
        sender: str,
        sent_at: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(meta)
        self.sender = sender
        self.sent_at = float(sent_at)

    def describe(self) -> str:
        return "Heartbeat({} @ {})".format(self.sender, self.sent_at)

    def _wire_body(self) -> Dict[str, Any]:
        return {"sender": self.sender, "sent_at": self.sent_at}

    @classmethod
    def _from_wire_body(cls, payload: Dict[str, Any]) -> "Heartbeat":
        return cls(sender=payload["sender"], sent_at=payload["sent_at"])


class SequencedForward(Message):
    """A broker→broker notification forward with a per-link sequence number.

    ``link_seq`` numbers the forwards the *sender* broker has emitted on
    this one directed link (1-based, contiguous); the sender retains the
    wrapped notification until a :class:`ForwardAck` covering the number
    arrives.  The receiver unwraps and processes ``notification``
    exactly as if it had arrived bare — the wrapper exists only so the
    retention window has identities to ack and replay by.
    """

    kind = MessageKind.NOTIFICATION

    __slots__ = ("notification", "sender", "link_seq")

    def __init__(
        self,
        notification: Notification,
        sender: str,
        link_seq: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(meta)
        self.notification = notification
        self.sender = sender
        self.link_seq = int(link_seq)

    def describe(self) -> str:
        return "SequencedForward({} link_seq={} {})".format(
            self.sender, self.link_seq, self.notification.describe()
        )

    def _wire_body(self) -> Dict[str, Any]:
        return {
            "notification": self.notification.to_wire(),
            "sender": self.sender,
            "link_seq": self.link_seq,
        }

    @classmethod
    def _from_wire_body(cls, payload: Dict[str, Any]) -> "SequencedForward":
        return cls(
            notification=Notification.from_wire(payload["notification"]),
            sender=payload["sender"],
            link_seq=payload["link_seq"],
        )


class ForwardAck(Message):
    """Cumulative ack: every forward with ``link_seq <= upto`` is processed.

    Sent by the broker that *received* sequenced forwards, on the reverse
    link, after it has fully dispatched them; the original sender prunes
    its retention buffer up to ``upto``.
    """

    kind = MessageKind.CONTROL

    __slots__ = ("sender", "upto")

    def __init__(
        self,
        sender: str,
        upto: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(meta)
        self.sender = sender
        self.upto = int(upto)

    def describe(self) -> str:
        return "ForwardAck({} upto={})".format(self.sender, self.upto)

    def _wire_body(self) -> Dict[str, Any]:
        return {"sender": self.sender, "upto": self.upto}

    @classmethod
    def _from_wire_body(cls, payload: Dict[str, Any]) -> "ForwardAck":
        return cls(sender=payload["sender"], upto=payload["upto"])
