"""The paper's tables must be reproduced cell for cell."""

from repro.core.ploc import MovementGraph
from repro.experiments import table1_ploc, table2_filters, table3_endpoints, table4_adaptive


class TestTable1:
    def test_matches_paper_exactly(self):
        result = table1_ploc.run()
        assert result.matches_paper, result.mismatches()

    def test_formatting_contains_all_locations(self):
        rendered = table1_ploc.run().format_text()
        for location in "abcd":
            assert "x = {}".format(location) in rendered

    def test_custom_graph_does_not_match_reference(self):
        corridor = MovementGraph.line(["a", "b", "c", "d"])
        result = table1_ploc.run(graph=corridor)
        assert not result.matches_paper
        assert result.mismatches()


class TestTable2:
    def test_analytical_chain_matches_paper(self):
        result = table2_filters.run()
        assert result.matches_paper

    def test_broker_network_realises_the_same_chain(self):
        result = table2_filters.run()
        assert result.implementation_agrees

    def test_formatting_lists_all_hops(self):
        rendered = table2_filters.run().format_text()
        for label in ("F0", "F1", "F2", "F3"):
            assert label in rendered


class TestTable3:
    def test_matches_paper_exactly(self):
        assert table3_endpoints.run().matches_paper

    def test_trivial_rows_saturate_at_one_step(self):
        result = table3_endpoints.run(max_hops=5)
        assert result.trivial[5] == result.trivial[1]

    def test_flooding_rows_cover_everything(self):
        result = table3_endpoints.run()
        for hop in (1, 2, 3):
            for location in "abcd":
                assert result.flooding[hop][location] == frozenset("abcd")


class TestTable4:
    def test_levels_match_figure8(self):
        result = table4_adaptive.run()
        assert result.levels[:4] == [0, 1, 1, 2]

    def test_table_matches_paper(self):
        assert table4_adaptive.run().matches_paper

    def test_cumulative_delays(self):
        result = table4_adaptive.run()
        assert result.cumulative_delays == [120.0, 170.0, 220.0, 240.0]

    def test_different_timings_change_levels(self):
        result = table4_adaptive.run(dwell_time=300.0)
        assert result.levels[:4] == [0, 1, 1, 1]
        assert not result.matches_paper
