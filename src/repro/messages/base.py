"""Base message type and message-kind taxonomy."""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Optional


class MessageKind(enum.Enum):
    """Coarse classification used by metrics and by the Figure 9 counters.

    The paper's Figure 9 counts "the total number of messages
    (notifications and administrative messages)"; keeping the kind on
    every message lets the metrics layer split the totals the same way.
    """

    NOTIFICATION = "notification"
    ADMIN = "admin"
    MOBILITY = "mobility"


class Message:
    """Base class of everything that is transported over a link.

    Every message carries a globally unique ``message_id`` (assigned from
    a process-wide counter; the simulation is single-process so this is
    also deterministic) and an optional free-form ``meta`` dictionary used
    by traces and tests.
    """

    kind: MessageKind = MessageKind.ADMIN

    _id_counter = itertools.count(1)

    __slots__ = ("message_id", "meta")

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.message_id: int = next(Message._id_counter)
        self.meta: Dict[str, Any] = dict(meta) if meta else {}

    def describe(self) -> str:
        """Short human-readable description used by traces."""
        return "{}#{}".format(type(self).__name__, self.message_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()

    @classmethod
    def reset_id_counter(cls) -> None:
        """Reset the global id counter (used by tests for reproducibility)."""
        cls._id_counter = itertools.count(1)
