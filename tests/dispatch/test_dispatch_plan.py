"""DispatchPlan must track the routing tables byte-for-byte under churn.

The plan maintains a counting index over the subscription table and
per-neighbour overlap indexes over the advertisement table through the
tables' row-level deltas; after *every* mutation its answers must equal
the table oracles (``matching_entries`` and the linear
``filters_overlap_hint`` scan) — including ``remove_subject`` /
``remove_destination`` bulk removals, ``clear`` resets, and lazy rebuilds.
"""

import random

from repro.dispatch.plan import AdvertisementOverlapIndex, DispatchPlan
from repro.filters.covering import filters_overlap_hint
from repro.filters.filter import Filter, MatchAll, MatchNone
from repro.routing.table import RoutingTable


def F(**constraints):
    return Filter(constraints)


def make_plan():
    subscriptions = RoutingTable()
    advertisements = RoutingTable()
    plan = DispatchPlan(subscriptions, advertisements)
    return plan, subscriptions, advertisements


def plan_rows(plan, attributes):
    return sorted((e.destination, e.seq) for e in plan.match(attributes))


def table_rows(table, attributes):
    return sorted((e.destination, e.seq) for e in table.matching_entries(attributes))


def scan_advertised_via(table, destination, filter_):
    return any(
        filters_overlap_hint(entry.filter, filter_)
        for entry in table.entries_for_destination(destination)
    )


class TestSubscriptionSide:
    def test_rows_added_before_first_use_are_seen(self):
        plan, table, _ = make_plan()
        table.add(F(service="parking"), "N1", "s1")
        assert plan_rows(plan, {"service": "parking"}) == table_rows(
            table, {"service": "parking"}
        )

    def test_incremental_maintenance_without_rescans(self):
        plan, table, _ = make_plan()
        table.add(F(service="parking"), "N1", "s1")
        assert plan.match({"service": "parking"})  # builds lazily
        calls = []
        original = table.entries
        table.entries = lambda: calls.append(1) or original()
        table.add(F(service="fuel"), "N2", "s2")
        table.add(F(service="parking"), "N2", "s3")
        table.remove(F(service="parking"), "N1", "s1")
        assert plan_rows(plan, {"service": "parking"}) == [("N2", 3)]
        assert plan_rows(plan, {"service": "fuel"}) == [("N2", 2)]
        assert calls == []

    def test_match_none_rows_are_ignored(self):
        plan, table, _ = make_plan()
        table.add(MatchNone(), "N1", "s1")
        table.add(F(service="parking"), "N1", "s2")
        assert plan_rows(plan, {"service": "parking"}) == [("N1", 2)]
        table.remove(MatchNone(), "N1", "s1")
        assert plan_rows(plan, {"service": "parking"}) == [("N1", 2)]

    def test_match_all_rows_match_everything(self):
        plan, table, _ = make_plan()
        table.add(MatchAll(), "N1", "everything")
        assert plan_rows(plan, {"anything": 1}) == [("N1", 1)]

    def test_subject_only_churn_keeps_shared_row(self):
        plan, table, _ = make_plan()
        table.add(F(service="parking"), "N1", "s1")
        assert plan.match({"service": "parking"})
        table.add(F(service="parking"), "N1", "s2")
        table.remove(F(service="parking"), "N1", "s1")
        assert plan_rows(plan, {"service": "parking"}) == [("N1", 1)]

    def test_clear_invalidates_and_rebuilds(self):
        plan, table, _ = make_plan()
        table.add(F(service="parking"), "N1", "s1")
        assert plan.match({"service": "parking"})
        table.clear()
        assert not plan.valid
        table.add(F(service="fuel"), "N2", "s2")
        assert plan_rows(plan, {"service": "fuel"}) == table_rows(table, {"service": "fuel"})
        assert plan_rows(plan, {"service": "parking"}) == []

    def test_randomized_churn_equals_table_oracle(self):
        rng = random.Random(31)
        plan, table, _ = make_plan()
        locations = ["l{}".format(i) for i in range(8)]
        live = []
        for step in range(400):
            roll = rng.random()
            if live and roll < 0.3:
                filter_, destination, subject = live.pop(rng.randrange(len(live)))
                table.remove(filter_, destination, subject)
            elif live and roll < 0.4:
                _, _, subject = rng.choice(live)
                table.remove_subject(subject)
                live = [item for item in live if item[2] != subject]
            elif live and roll < 0.45:
                destination = rng.choice(live)[1]
                table.remove_destination(destination)
                live = [item for item in live if item[1] != destination]
            else:
                if roll > 0.98:
                    filter_ = MatchNone()
                elif roll > 0.94:
                    filter_ = Filter({"cost": ("<", rng.randint(0, 5))})
                else:
                    span = rng.randint(1, 3)
                    start = rng.randint(0, len(locations) - span)
                    filter_ = Filter(
                        {"service": "parking", "location": ("in", locations[start : start + span])}
                    )
                destination = rng.choice(["N1", "N2", "c1"])
                subject = "s{}".format(rng.randint(0, 9))
                table.add(filter_, destination, subject)
                live.append((filter_, destination, subject))
            if rng.random() < 0.1:
                plan.invalidate()  # exercise the rebuild path mid-churn
            notification = {
                "service": rng.choice(["parking", "fuel"]),
                "location": rng.choice(locations),
                "cost": rng.randint(0, 5),
            }
            assert plan_rows(plan, notification) == table_rows(table, notification)


class TestAdvertisementSide:
    def test_gate_tracks_adverts_incrementally(self):
        plan, _, adverts = make_plan()
        query = F(service="parking", location="a")
        assert plan.advertised_via("N1", query) is False
        adverts.add(F(service="parking"), "N1", "a1")
        assert plan.advertised_via("N1", query) is True
        assert plan.advertised_via("N2", query) is False
        adverts.remove(F(service="parking"), "N1", "a1")
        assert plan.advertised_via("N1", query) is False

    def test_disjoint_equalities_are_pruned(self):
        plan, _, adverts = make_plan()
        adverts.add(F(service="fuel"), "N1", "a1")
        assert plan.advertised_via("N1", F(service="parking")) is False
        adverts.add(F(service="parking", location=("in", ["a", "b"])), "N1", "a2")
        assert plan.advertised_via("N1", F(service="parking", location="a")) is True
        assert plan.advertised_via("N1", F(service="parking", location="c")) is False

    def test_unconstrained_advert_overlaps_everything(self):
        plan, _, adverts = make_plan()
        adverts.add(MatchAll(), "N1", "a1")
        assert plan.advertised_via("N1", F(service="parking")) is True
        assert plan.advertised_via("N1", MatchNone()) is False

    def test_randomized_gate_equals_scan(self):
        rng = random.Random(77)
        plan, _, adverts = make_plan()
        services = ["parking", "fuel", "bus"]
        locations = ["a", "b", "c", "d"]
        pool = []
        for _ in range(40):
            template = {}
            if rng.random() < 0.8:
                template["service"] = rng.choice(services)
            if rng.random() < 0.6:
                count = rng.randint(1, 3)
                template["location"] = ("in", rng.sample(locations, count))
            if rng.random() < 0.3:
                template["cost"] = ("<", rng.randint(1, 5))
            pool.append(Filter(template))
        live = []
        for step in range(300):
            if live and rng.random() < 0.4:
                filter_, destination, subject = live.pop(rng.randrange(len(live)))
                adverts.remove(filter_, destination, subject)
            else:
                filter_ = rng.choice(pool + [MatchNone(), MatchAll()])
                destination = rng.choice(["N1", "N2"])
                subject = "a{}".format(step)
                adverts.add(filter_, destination, subject)
                live.append((filter_, destination, subject))
            query = rng.choice(pool)
            for destination in ("N1", "N2"):
                assert plan.advertised_via(destination, query) == scan_advertised_via(
                    adverts, destination, query
                ), (step, destination, query)


class TestOverlapIndexDirect:
    def test_multi_attribute_disjointness(self):
        index = AdvertisementOverlapIndex()
        index.add(F(service="parking", location="a"))
        # Shares the service value but not the location value: disjoint.
        assert index.any_overlap(F(service="parking", location="b")) is False
        # Constrains only an attribute the ad does not: overlaps.
        assert index.any_overlap(F(floor=3)) is True

    def test_non_finite_constraints_never_prove_disjointness(self):
        index = AdvertisementOverlapIndex()
        index.add(F(cost=("<", 3)))
        assert index.any_overlap(F(cost=5)) is True  # mirrors the hint's blind spot
