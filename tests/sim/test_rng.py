"""Unit tests for the deterministic RNG wrapper."""

from repro.sim.rng import DeterministicRandom


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        left = DeterministicRandom(42)
        right = DeterministicRandom(42)
        assert [left.randint(0, 100) for _ in range(10)] == [
            right.randint(0, 100) for _ in range(10)
        ]
        assert [left.uniform(0, 1) for _ in range(5)] == [right.uniform(0, 1) for _ in range(5)]

    def test_different_seeds_differ(self):
        left = DeterministicRandom(1)
        right = DeterministicRandom(2)
        assert [left.randint(0, 10 ** 9) for _ in range(5)] != [
            right.randint(0, 10 ** 9) for _ in range(5)
        ]

    def test_fork_is_deterministic_and_independent(self):
        base = DeterministicRandom(7)
        fork_a = base.fork(1)
        fork_b = base.fork(2)
        again = DeterministicRandom(7).fork(1)
        assert [fork_a.random() for _ in range(5)] == [again.random() for _ in range(5)]
        assert fork_a.seed != fork_b.seed

    def test_choice_and_sample(self):
        rng = DeterministicRandom(3)
        options = ["a", "b", "c", "d"]
        assert rng.choice(options) in options
        sample = rng.sample(options, 2)
        assert len(sample) == 2
        assert set(sample) <= set(options)

    def test_shuffle_preserves_elements(self):
        rng = DeterministicRandom(3)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_expovariate_positive(self):
        rng = DeterministicRandom(3)
        assert all(rng.expovariate(2.0) > 0 for _ in range(100))
