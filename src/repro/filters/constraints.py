"""Per-attribute constraints.

A content-based filter (Section 2.1 of the paper) is a conjunction of
constraints, each over a single attribute name.  This module defines the
constraint types, their matching semantics, and the pairwise *covering*
relation between constraints on the same attribute which the
covering-based routing strategy (Section 2.2) relies on.

The covering test implemented here is *sound*: whenever
``c1.covers(c2)`` returns ``True``, every value accepted by ``c2`` is also
accepted by ``c1``.  It is intentionally not complete for a few exotic
combinations (e.g. a dense enumeration of an interval by an ``InSet``
covering a ``Between``); incompleteness only costs routing-table
optimisation opportunities, never correctness, exactly as in Rebeca and
Siena.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Tuple

from repro.filters.attributes import (
    TYPE_NUMBER,
    TYPE_STRING,
    AttributeValue,
    canonical_key,
    coerce_value,
    try_compare,
    value_type_of,
    values_equal,
)


class Constraint:
    """Abstract base class for a constraint on a single attribute value.

    Subclasses implement :meth:`matches`, :meth:`covers` and expose a
    canonical, hashable :meth:`key` used for filter equality.
    """

    #: Short operator mnemonic used by ``repr`` and serialisation.
    op: str = "?"

    def matches(self, value: AttributeValue) -> bool:
        """Return ``True`` when *value* satisfies the constraint."""
        raise NotImplementedError

    def matches_absent(self) -> bool:
        """Return ``True`` when the constraint is satisfied by a missing attribute.

        Only :class:`AnyValue` is satisfied by an absent attribute; every
        other constraint requires the attribute to be present.
        """
        return False

    def covers(self, other: "Constraint") -> bool:
        """Sound covering test: does ``self`` accept a superset of ``other``?"""
        raise NotImplementedError

    def key(self) -> Tuple[Any, ...]:
        """Canonical hashable representation (operator plus operands)."""
        raise NotImplementedError

    # -- hashing / equality -------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "{}({})".format(type(self).__name__, ", ".join(map(repr, self.key()[1:])))


# ---------------------------------------------------------------------------
# Trivial constraints
# ---------------------------------------------------------------------------


class AnyValue(Constraint):
    """Matches any value and also an absent attribute (i.e. no constraint)."""

    op = "any"

    def matches(self, value: AttributeValue) -> bool:
        return True

    def matches_absent(self) -> bool:
        return True

    def covers(self, other: Constraint) -> bool:
        return True

    def key(self) -> Tuple[Any, ...]:
        return (self.op,)


class Exists(Constraint):
    """Matches any value but requires the attribute to be present."""

    op = "exists"

    def matches(self, value: AttributeValue) -> bool:
        return True

    def covers(self, other: Constraint) -> bool:
        # Everything except AnyValue requires presence, so Exists covers it.
        return not isinstance(other, AnyValue)

    def key(self) -> Tuple[Any, ...]:
        return (self.op,)


# ---------------------------------------------------------------------------
# Equality constraints
# ---------------------------------------------------------------------------


class Equals(Constraint):
    """``attribute = value``."""

    op = "eq"

    def __init__(self, value: AttributeValue) -> None:
        self.value = coerce_value(value)

    def matches(self, value: AttributeValue) -> bool:
        return values_equal(value, self.value)

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, Equals):
            return values_equal(other.value, self.value)
        if isinstance(other, InSet):
            return all(values_equal(v, self.value) for v in other.values)
        if isinstance(other, Between):
            return other.is_degenerate() and values_equal(other.low, self.value)
        return False

    def key(self) -> Tuple[Any, ...]:
        return (self.op, canonical_key(self.value))


class NotEquals(Constraint):
    """``attribute != value``."""

    op = "ne"

    def __init__(self, value: AttributeValue) -> None:
        self.value = coerce_value(value)

    def matches(self, value: AttributeValue) -> bool:
        return not values_equal(value, self.value)

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, NotEquals):
            return values_equal(other.value, self.value)
        if isinstance(other, Equals):
            return not values_equal(other.value, self.value)
        if isinstance(other, InSet):
            return all(not values_equal(v, self.value) for v in other.values)
        if isinstance(other, (LessThan, GreaterThan)):
            # A strict bound excludes its pivot; it is covered when the
            # excluded value is the pivot itself only if nothing else could
            # equal self.value -- too fine-grained to decide soundly except
            # when the pivot equals our excluded value and the bound is
            # strict away from it.  Keep it conservative.
            return False
        return False

    def key(self) -> Tuple[Any, ...]:
        return (self.op, canonical_key(self.value))


# ---------------------------------------------------------------------------
# Ordering constraints
# ---------------------------------------------------------------------------


class _OrderedConstraint(Constraint):
    """Common behaviour for constraints with a single ordered pivot value."""

    def __init__(self, value: AttributeValue) -> None:
        self.value = coerce_value(value)
        tag = value_type_of(self.value)
        if tag not in (TYPE_NUMBER, TYPE_STRING):
            raise TypeError(
                "ordered constraints require a string or numeric pivot, got {!r}".format(value)
            )

    def key(self) -> Tuple[Any, ...]:
        return (self.op, canonical_key(self.value))


class LessThan(_OrderedConstraint):
    """``attribute < value``."""

    op = "lt"

    def matches(self, value: AttributeValue) -> bool:
        ok, sign = try_compare(value, self.value)
        return ok and sign < 0

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, LessThan):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign <= 0
        if isinstance(other, LessEqual):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign < 0
        if isinstance(other, Equals):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign < 0
        if isinstance(other, InSet):
            return all(self.matches(v) for v in other.values)
        if isinstance(other, Between):
            ok, sign = try_compare(other.high, self.value)
            if not ok:
                return False
            return sign < 0 or (sign == 0 and not other.high_inclusive)
        return False


class LessEqual(_OrderedConstraint):
    """``attribute <= value``."""

    op = "le"

    def matches(self, value: AttributeValue) -> bool:
        ok, sign = try_compare(value, self.value)
        return ok and sign <= 0

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, (LessThan, LessEqual)):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign <= 0
        if isinstance(other, Equals):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign <= 0
        if isinstance(other, InSet):
            return all(self.matches(v) for v in other.values)
        if isinstance(other, Between):
            ok, sign = try_compare(other.high, self.value)
            return ok and sign <= 0
        return False


class GreaterThan(_OrderedConstraint):
    """``attribute > value``."""

    op = "gt"

    def matches(self, value: AttributeValue) -> bool:
        ok, sign = try_compare(value, self.value)
        return ok and sign > 0

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, GreaterThan):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign >= 0
        if isinstance(other, GreaterEqual):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign > 0
        if isinstance(other, Equals):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign > 0
        if isinstance(other, InSet):
            return all(self.matches(v) for v in other.values)
        if isinstance(other, Between):
            ok, sign = try_compare(other.low, self.value)
            if not ok:
                return False
            return sign > 0 or (sign == 0 and not other.low_inclusive)
        return False


class GreaterEqual(_OrderedConstraint):
    """``attribute >= value``."""

    op = "ge"

    def matches(self, value: AttributeValue) -> bool:
        ok, sign = try_compare(value, self.value)
        return ok and sign >= 0

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, (GreaterThan, GreaterEqual)):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign >= 0
        if isinstance(other, Equals):
            ok, sign = try_compare(other.value, self.value)
            return ok and sign >= 0
        if isinstance(other, InSet):
            return all(self.matches(v) for v in other.values)
        if isinstance(other, Between):
            ok, sign = try_compare(other.low, self.value)
            return ok and sign >= 0
        return False


class Between(Constraint):
    """``low <= attribute <= high`` with configurable bound inclusivity."""

    op = "between"

    def __init__(
        self,
        low: AttributeValue,
        high: AttributeValue,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        self.low = coerce_value(low)
        self.high = coerce_value(high)
        self.low_inclusive = bool(low_inclusive)
        self.high_inclusive = bool(high_inclusive)
        ok, sign = try_compare(self.low, self.high)
        if not ok:
            raise TypeError("interval bounds must be order-comparable")
        if sign > 0:
            raise ValueError("interval low bound must not exceed high bound")

    def is_degenerate(self) -> bool:
        """``True`` for a closed interval [x, x] accepting a single value."""
        ok, sign = try_compare(self.low, self.high)
        return ok and sign == 0 and self.low_inclusive and self.high_inclusive

    def matches(self, value: AttributeValue) -> bool:
        ok_low, sign_low = try_compare(value, self.low)
        ok_high, sign_high = try_compare(value, self.high)
        if not (ok_low and ok_high):
            return False
        low_ok = sign_low > 0 or (sign_low == 0 and self.low_inclusive)
        high_ok = sign_high < 0 or (sign_high == 0 and self.high_inclusive)
        return low_ok and high_ok

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, Equals):
            return self.matches(other.value)
        if isinstance(other, InSet):
            return all(self.matches(v) for v in other.values)
        if isinstance(other, Between):
            ok_low, sign_low = try_compare(other.low, self.low)
            ok_high, sign_high = try_compare(other.high, self.high)
            if not (ok_low and ok_high):
                return False
            low_ok = sign_low > 0 or (
                sign_low == 0 and (self.low_inclusive or not other.low_inclusive)
            )
            high_ok = sign_high < 0 or (
                sign_high == 0 and (self.high_inclusive or not other.high_inclusive)
            )
            return low_ok and high_ok
        return False

    def key(self) -> Tuple[Any, ...]:
        return (
            self.op,
            canonical_key(self.low),
            canonical_key(self.high),
            self.low_inclusive,
            self.high_inclusive,
        )


# ---------------------------------------------------------------------------
# Set membership and string constraints
# ---------------------------------------------------------------------------


class InSet(Constraint):
    """``attribute ∈ {v1, v2, ...}``.

    This constraint is the work-horse of logical mobility: a
    location-dependent subscription instantiates the ``myloc`` marker with
    an :class:`InSet` over ``ploc(x, q)`` (Section 5.1 of the paper).
    """

    op = "in"

    def __init__(self, values: Iterable[AttributeValue]) -> None:
        coerced = [coerce_value(v) for v in values]
        if not coerced:
            raise ValueError("InSet requires at least one value; use MatchNone for empty sets")
        # Keep canonical keys for fast membership, and one representative
        # value per key for iteration / merging.
        by_key = {}
        for value in coerced:
            by_key.setdefault(canonical_key(value), value)
        self._by_key = by_key
        self.values: Tuple[AttributeValue, ...] = tuple(
            by_key[k] for k in sorted(by_key, key=repr)
        )

    def matches(self, value: AttributeValue) -> bool:
        return canonical_key(value) in self._by_key

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, Equals):
            return self.matches(other.value)
        if isinstance(other, InSet):
            return all(k in self._by_key for k in other._by_key)
        if isinstance(other, Between):
            return other.is_degenerate() and self.matches(other.low)
        return False

    def key(self) -> Tuple[Any, ...]:
        return (self.op, tuple(sorted(self._by_key)))

    def union(self, other: "InSet") -> "InSet":
        """Return an :class:`InSet` accepting the union of both value sets."""
        return InSet(tuple(self.values) + tuple(other.values))

    def as_frozenset(self) -> FrozenSet[Tuple[str, Any]]:
        """Canonical keys of the member values (for set algebra in tests)."""
        return frozenset(self._by_key)


class Prefix(Constraint):
    """``attribute`` is a string starting with the given prefix."""

    op = "prefix"

    def __init__(self, prefix: str) -> None:
        if not isinstance(prefix, str):
            raise TypeError("Prefix constraint requires a string prefix")
        self.prefix = prefix

    def matches(self, value: AttributeValue) -> bool:
        return isinstance(value, str) and value.startswith(self.prefix)

    def covers(self, other: Constraint) -> bool:
        if isinstance(other, Prefix):
            return other.prefix.startswith(self.prefix)
        if isinstance(other, Equals):
            return isinstance(other.value, str) and other.value.startswith(self.prefix)
        if isinstance(other, InSet):
            return all(self.matches(v) for v in other.values)
        return False

    def key(self) -> Tuple[Any, ...]:
        return (self.op, self.prefix)


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------

#: Mapping from operator mnemonics (and common symbols) to constructors.
_OPERATORS = {
    "any": lambda *a: AnyValue(),
    "exists": lambda *a: Exists(),
    "eq": Equals,
    "=": Equals,
    "==": Equals,
    "ne": NotEquals,
    "!=": NotEquals,
    "lt": LessThan,
    "<": LessThan,
    "le": LessEqual,
    "<=": LessEqual,
    "gt": GreaterThan,
    ">": GreaterThan,
    "ge": GreaterEqual,
    ">=": GreaterEqual,
    "in": InSet,
    "between": Between,
    "prefix": Prefix,
}


def constraint_from_tuple(spec: Any) -> Constraint:
    """Build a constraint from a terse specification.

    Accepted forms (used pervasively by tests, examples and workloads)::

        constraint_from_tuple(5)                  -> Equals(5)
        constraint_from_tuple("parking")          -> Equals("parking")
        constraint_from_tuple(("<", 3))           -> LessThan(3)
        constraint_from_tuple(("in", ["a", "b"])) -> InSet({"a", "b"})
        constraint_from_tuple(("between", 1, 5))  -> Between(1, 5)
        constraint_from_tuple(existing_constraint) -> existing_constraint
    """
    if isinstance(spec, Constraint):
        return spec
    if isinstance(spec, tuple) and spec and isinstance(spec[0], str) and spec[0] in _OPERATORS:
        op = spec[0]
        args = spec[1:]
        ctor = _OPERATORS[op]
        if op == "in" and len(args) == 1:
            return ctor(args[0])
        return ctor(*args)
    # Bare value means equality.
    return Equals(coerce_value(spec))
