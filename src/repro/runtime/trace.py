"""Trace recording (backend-neutral).

Every message traversal of a channel and every delivery to a client
callback is recorded here.  The metrics layer (message counts for
Figure 9, the blackout analysis for Figure 3) and the QoS checkers
(completeness, duplicates, FIFO, epochs) are pure functions over these
records, which keeps the middleware itself free of measurement concerns.

The recorder depends only on :mod:`repro.messages`, so both the
simulator backend (:mod:`repro.runtime.sim`) and the asyncio backend
(:mod:`repro.runtime.aio`) feed the same record types — which is what
lets the backend-parity tests compare traces across backends directly.
(:mod:`repro.sim.trace` re-exports these names for compatibility.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.messages.base import Message, MessageKind
from repro.messages.notification import Notification


@dataclass(frozen=True)
class LinkRecord:
    """One message crossing one link (counted once per traversal)."""

    time: float
    source: str
    target: str
    kind: MessageKind
    message_type: str
    message_id: int
    description: str = ""


@dataclass(frozen=True)
class DeliveryRecord:
    """One notification handed to a client's ``notify`` callback."""

    time: float
    client_id: str
    subscription_id: str
    publisher: str
    publisher_seq: int
    sequence: Optional[int]
    attributes: Tuple[Tuple[str, Any], ...]

    @property
    def identity(self) -> Tuple[str, int]:
        """Global identity of the delivered notification."""
        return (self.publisher, self.publisher_seq)


@dataclass(frozen=True)
class DropRecord:
    """One message lost by fault injection, attributed to its cause.

    *reason* names the fault that consumed the message: ``"loss"`` for
    the iid drop model, ``"partition"`` for a scheduled link-down window,
    ``"broker-down"`` for a message that reached a crashed broker.  The
    recovery metrics (:mod:`repro.metrics.recovery`) split losses by
    reason, which is how the failure experiments attribute missing
    deliveries to the fault schedule instead of guessing.
    """

    time: float
    source: str
    target: str
    kind: MessageKind
    message_type: str
    message_id: int
    reason: str


@dataclass(frozen=True)
class PublishRecord:
    """One notification injected into the system by a producer."""

    time: float
    publisher: str
    publisher_seq: int
    attributes: Tuple[Tuple[str, Any], ...]

    @property
    def identity(self) -> Tuple[str, int]:
        return (self.publisher, self.publisher_seq)


class TraceRecorder:
    """Collects link, publish and delivery records for one simulation run."""

    def __init__(self) -> None:
        self.link_records: List[LinkRecord] = []
        self.delivery_records: List[DeliveryRecord] = []
        self.publish_records: List[PublishRecord] = []
        self.drop_records: List[DropRecord] = []

    # -- recording hooks ----------------------------------------------------
    def record_link(self, time: float, source: str, target: str, message: Message) -> None:
        """Record that *message* crossed the link from *source* to *target*."""
        self.link_records.append(
            LinkRecord(
                time=time,
                source=source,
                target=target,
                kind=message.kind,
                message_type=type(message).__name__,
                message_id=message.message_id,
                description=message.describe(),
            )
        )

    def record_drop(
        self, time: float, source: str, target: str, message: Message, reason: str
    ) -> None:
        """Record that *message* was lost between *source* and *target*."""
        self.drop_records.append(
            DropRecord(
                time=time,
                source=source,
                target=target,
                kind=message.kind,
                message_type=type(message).__name__,
                message_id=message.message_id,
                reason=reason,
            )
        )

    def record_publish(self, time: float, notification: Notification) -> None:
        """Record a notification being published by its producer."""
        self.publish_records.append(
            PublishRecord(
                time=time,
                publisher=notification.publisher,
                publisher_seq=notification.publisher_seq,
                attributes=tuple(sorted(notification.attributes.items())),
            )
        )

    def record_delivery(
        self,
        time: float,
        client_id: str,
        subscription_id: str,
        notification: Notification,
        sequence: Optional[int] = None,
    ) -> None:
        """Record a notification being delivered to a client."""
        self.delivery_records.append(
            DeliveryRecord(
                time=time,
                client_id=client_id,
                subscription_id=subscription_id,
                publisher=notification.publisher,
                publisher_seq=notification.publisher_seq,
                sequence=sequence,
                attributes=tuple(sorted(notification.attributes.items())),
            )
        )

    # -- queries --------------------------------------------------------------
    def deliveries_for(self, client_id: str) -> List[DeliveryRecord]:
        """All deliveries to *client_id*, in delivery order."""
        return [r for r in self.delivery_records if r.client_id == client_id]

    def link_messages(
        self,
        kind: Optional[MessageKind] = None,
        until: Optional[float] = None,
        since: Optional[float] = None,
    ) -> List[LinkRecord]:
        """Link traversals filtered by message kind and time window."""
        out = self.link_records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if until is not None:
            out = [r for r in out if r.time <= until]
        if since is not None:
            out = [r for r in out if r.time >= since]
        return list(out)

    def count_link_messages(
        self,
        kind: Optional[MessageKind] = None,
        until: Optional[float] = None,
        since: Optional[float] = None,
    ) -> int:
        """Number of link traversals matching the given filters."""
        return len(self.link_messages(kind=kind, until=until, since=since))

    def drops(
        self,
        kind: Optional[MessageKind] = None,
        reason: Optional[str] = None,
        until: Optional[float] = None,
        since: Optional[float] = None,
    ) -> List[DropRecord]:
        """Dropped messages filtered by kind, fault reason and time window."""
        out = self.drop_records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if reason is not None:
            out = [r for r in out if r.reason == reason]
        if until is not None:
            out = [r for r in out if r.time <= until]
        if since is not None:
            out = [r for r in out if r.time >= since]
        return list(out)

    def publishes(self, until: Optional[float] = None) -> List[PublishRecord]:
        """All publish records, optionally truncated at *until*."""
        if until is None:
            return list(self.publish_records)
        return [r for r in self.publish_records if r.time <= until]

    def clear(self) -> None:
        """Forget all recorded data."""
        self.link_records.clear()
        self.delivery_records.clear()
        self.publish_records.clear()
        self.drop_records.clear()
