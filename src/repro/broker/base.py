"""The broker process.

A :class:`Broker` owns

* a subscription routing table and an advertisement table
  (:class:`~repro.routing.table.RoutingTable`),
* a routing strategy (:mod:`repro.routing.strategies`) that decides which
  filters are forwarded to which neighbours,
* outgoing links to its neighbour brokers,
* registrations of locally attached clients (making it a *border broker*
  for those clients), and
* the per-subscription mobility state of both protocols: virtual
  counterparts and relocation buffers for physical mobility (Section 4),
  and :class:`~repro.core.logical.LogicalSubscriptionState` records for
  logical mobility (Section 5).

Subscription forwarding is organised around a single primitive,
:meth:`Broker.refresh_forwarding`: for a neighbour ``N`` the broker
computes the *desired* set of (filter, subject) pairs that should be
registered at ``N`` — the strategy reduces the filters, advertisements
restrict the directions — and then emits exactly the ``Subscribe`` /
``Unsubscribe`` messages needed to move from the currently forwarded set
to the desired set.  Plain subscriptions, unsubscriptions, client
attach/detach and the relocation protocol all reuse this primitive, which
keeps the broker's behaviour consistent across all of them.
"""

from __future__ import annotations

import functools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.location_filter import (
    LocationDependentFilter,
    LocationDependentSubscribe,
    LocationDependentUnsubscribe,
)
from repro.broker.forwarding import NeighbourForwardingState
from repro.core.logical import LogicalSubscriptionState
from repro.dispatch.plan import DispatchPlan
from repro.dispatch.stats import dispatch_stats
from repro.core.physical import RelocationBuffer, RelocationRecord, VirtualCounterpart
from repro.filters.attributes import canonical_key
from repro.filters.covering import filter_covers, filters_overlap_hint
from repro.filters.covering_cache import CoveringCache, get_covering_cache
from repro.filters.filter import Filter, MatchNone
from repro.broker.recovery import (
    RecoveryStore,
    ReplaySink,
    RoutingSnapshot,
    apply_snapshot,
    build_snapshot,
)
from repro.messages.admin import Advertise, Subscribe, Unadvertise, Unsubscribe
from repro.messages.base import Message, MessageKind
from repro.messages.control import ForwardAck, Heartbeat, SequencedForward
from repro.messages.mobility import (
    FetchRequest,
    LocationUpdate,
    MovedSubscribe,
    RelocationComplete,
    Replay,
)
from repro.messages.notification import Notification
from repro.routing.strategies import RoutingStrategy
from repro.routing.table import RoutingTable
from repro.runtime.protocols import Channel, Clock
from repro.runtime.trace import TraceRecorder
from repro.telemetry.events import HOP_DELIVER, HOP_DISPATCH, HOP_FORWARD, trace_id_of
from repro.telemetry.registry import MetricRegistry


def subscription_token(client_id: str, subscription_id: str) -> str:
    """The routing subject used for one client subscription."""
    return "{}/{}".format(client_id, subscription_id)


def _attributed(method):
    """Attribute data-plane stats recorded during *method* to this broker.

    Entry points wrapped with this point the process-wide stats facades'
    hot-path sinks at the broker's :class:`MetricRegistry` for the
    duration of the call (see :meth:`MetricRegistry.activate`).  Both
    runtime backends execute broker code on one thread, so the
    save/restore pair nests safely when one entry point reaches another.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        saved = self.metrics.activate()
        try:
            return method(self, *args, **kwargs)
        finally:
            MetricRegistry.restore(saved)

    return wrapper


# ---------------------------------------------------------------------------
# Deterministic ordering of (filter key, subject) pairs
# ---------------------------------------------------------------------------
#
# ``refresh_forwarding`` sorts the Subscribe/Unsubscribe diff so message
# emission is deterministic.  Filter keys are nested tuples mixing value
# types (strings, numbers, booleans, tuples), which do not compare across
# types, so a total order needs type tagging.  Sorting by ``repr`` of the
# whole key worked but allocated a string per entry per refresh; instead we
# map each key once to a comparable type-ranked token and memoise it (the
# same filter keys recur on every refresh).

_SORT_TOKEN_CACHE: Dict[Any, Any] = {}
_SORT_TOKEN_CACHE_LIMIT = 65536


def _sortable_token(value: Any) -> Any:
    """A totally ordered, cheap-to-compare stand-in for a filter-key part."""
    if isinstance(value, tuple):
        return (3, tuple(_sortable_token(part) for part in value))
    if isinstance(value, bool):  # before int: bool is an int subclass
        return (0, 1 if value else 0)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (4, repr(value))


def _forwarding_sort_key(item: Tuple[Tuple[Any, str], Filter]) -> Tuple[Any, str]:
    filter_key, subject = item[0]
    token = _SORT_TOKEN_CACHE.get(filter_key)
    if token is None:
        if len(_SORT_TOKEN_CACHE) >= _SORT_TOKEN_CACHE_LIMIT:
            _SORT_TOKEN_CACHE.clear()
        token = _sortable_token(filter_key)
        _SORT_TOKEN_CACHE[filter_key] = token
    return (token, subject)


def _entry_sort_key(entry: Any) -> Tuple[str, int]:
    """Stable order for matched routing rows: destination, then creation seq."""
    return (entry.destination, entry.seq)


def _attribute_signature(attributes: Any) -> Optional[Tuple[Any, ...]]:
    """Hashable identity of a notification's attribute values.

    Two notifications with equal signatures match exactly the same
    filters, so a batched run can share one dispatch pass between them.
    Values the canonical key cannot represent (unhashable exotica) yield
    ``None``: such messages are matched individually.
    """
    try:
        return tuple(
            sorted((name, canonical_key(value)) for name, value in attributes.items())
        )
    except TypeError:
        return None


@dataclass
class BrokerConfig:
    """Tunable broker behaviour.

    Parameters
    ----------
    use_advertisements:
        When ``True`` (the default), subscriptions are only forwarded
        toward neighbours from which an overlapping advertisement was
        received.  This is what allows the relocation protocol to tear
        down the now-unused parts of the old delivery path (Section 4.1's
        garbage-collection guarantee).
    counterpart_max_buffer:
        Bound on the virtual counterpart buffer; ``None`` means unbounded
        (the paper's idealised completeness).
    propagate_unchanged_location_updates:
        When ``True`` (the paper's conservative assumption behind
        Figure 9), a location change generates an administrative message on
        every link of the subscription path even if the corresponding
        ``ploc`` set did not change; when ``False``, propagation stops at
        the first hop whose upstream filter is unaffected (an ablation).
    incremental_forwarding:
        When ``True`` (the default), :meth:`Broker.refresh_forwarding`
        only recomputes a neighbour's desired forwarding set when routing
        state relevant to that neighbour actually changed, reuses the
        previous strategy reduction incrementally, and memoises covering
        tests in the shared :class:`~repro.filters.covering_cache.CoveringCache`.
        When ``False``, every refresh recomputes everything from scratch
        (the original behaviour, kept as the benchmark baseline).  Both
        modes produce identical messages and routing tables.
    delta_forwarding:
        When ``True`` (the default) *and* ``incremental_forwarding`` is
        on *and* the strategy supports it (see
        :attr:`~repro.routing.strategies.RoutingStrategy.delta_reduction`),
        each neighbour's desired forwarding set is maintained **as a
        delta-driven cache**: routing-table row changes are applied
        directly to the cached desired dict (including cover
        reassignment when an added/removed filter changes the minimal
        cover selection), so a routing change costs O(affected entries)
        instead of a Θ(table) rescan per dirty refresh.  Merging
        strategies additionally maintain the greedy merge result through
        an incremental merge forest backed by the bounded merge-pair
        cache (:mod:`repro.filters.merge_state`).  When ``False``, the
        PR 1 per-refresh incremental path is used.  All three modes
        produce identical messages, routing tables and deliveries.
    indexed_dispatch:
        When ``True`` (the default), the broker matches notifications
        through a compiled :class:`~repro.dispatch.plan.DispatchPlan`: a
        counting :class:`~repro.dispatch.predicate_index.PredicateIndex`
        over the subscription table answers the forwarding *and* the
        local-delivery question in one pass, and a per-neighbour
        :class:`~repro.dispatch.plan.AdvertisementOverlapIndex` answers
        the ``_advertised_via`` gate without scanning the advertisement
        entries.  Both structures are maintained incrementally from the
        routing tables' row-level deltas.  When ``False``, notifications
        are matched by the routing table's candidate engine and the gate
        scans linearly (the original behaviour, kept as the byte-identical
        oracle: same deliveries, same admin traffic, same RNG order).
    vectorised_dispatch:
        Selects the matcher inside the ``DispatchPlan`` (only meaningful
        with ``indexed_dispatch`` on).  When ``True`` (the default), the
        plan matches through the
        :class:`~repro.dispatch.counting.BitsetMatcher`: predicate→filter
        sets compiled into big-int bitmasks, per-filter counts kept in
        bit-sliced planes, and near-universal ("hot") predicates lifted
        out of the counting arity (see ``docs/performance.md``,
        "Vectorised dispatch").  When ``False``, the scalar
        :class:`~repro.dispatch.counting.CountingMatcher` runs instead.
        All three dispatch modes — vectorised, counting, scan — produce
        byte-identical deliveries and traces.
    forward_retention:
        When set to an integer ``W``, every broker→broker notification
        forward is wrapped in a :class:`~repro.messages.control.
        SequencedForward` and *retained* (at most ``W`` per neighbour,
        oldest evicted first) until the receiving broker's cumulative
        :class:`~repro.messages.control.ForwardAck` releases it.  The
        retained, unacknowledged window is what
        :meth:`Broker.takeover_subscribe` replays to a durable
        subscriber failing over from a crashed neighbour — closing the
        in-flight loss window the paper's failure-free model never had
        to consider.  ``None`` (the default) keeps the paper's bare
        forwards: no wrapper, no acks, no retention.
    """

    use_advertisements: bool = True
    counterpart_max_buffer: Optional[int] = None
    propagate_unchanged_location_updates: bool = True
    incremental_forwarding: bool = True
    delta_forwarding: bool = True
    indexed_dispatch: bool = True
    vectorised_dispatch: bool = True
    forward_retention: Optional[int] = None


@dataclass
class _SubscriptionRecord:
    """Border-broker bookkeeping for one locally attached subscription."""

    client_id: str
    subscription_id: str
    filter: Filter
    next_sequence: int = 1
    relocation_buffer: Optional[RelocationBuffer] = None
    logical: Optional[LogicalSubscriptionState] = None

    @property
    def token(self) -> str:
        return subscription_token(self.client_id, self.subscription_id)


@dataclass
class _ClientRegistration:
    """A locally attached (or recently detached) client."""

    client: Any
    attached: bool = True
    subscriptions: Dict[str, _SubscriptionRecord] = field(default_factory=dict)
    advertisements: Dict[str, Filter] = field(default_factory=dict)


class Broker:
    """One broker of the content-based pub/sub network."""

    def __init__(
        self,
        name: str,
        clock: Clock,
        strategy: RoutingStrategy,
        trace: Optional[TraceRecorder] = None,
        config: Optional[BrokerConfig] = None,
    ) -> None:
        self.name = name
        self.clock = clock
        # Historical alias: the clock used to be the Simulator instance.
        # The broker only ever reads ``now`` from it, which any backend
        # clock provides; tests and client code written against the old
        # attribute keep working.
        self.simulator = clock
        self.strategy = strategy
        self.trace = trace
        self.config = config or BrokerConfig()

        # Observability: every broker owns one metric registry (the
        # single home for its instrumentation); ``counters`` below is the
        # registry's counter dict, so existing increment sites feed it
        # directly.  ``_telemetry`` is the per-broker event emitter,
        # attached by the network only when telemetry is enabled — every
        # event hook is a single ``is not None`` check when it is not.
        self.metrics = MetricRegistry(name)
        self._telemetry: Optional[Any] = None

        # Channel management: neighbour broker name -> outgoing channel.
        self._links: Dict[str, Channel] = {}

        # Crash recovery: ``recovery`` holds the (optional) persistent
        # store, ``_crashed`` gates message intake while down, and
        # ``_replaying`` suppresses journaling while the log tail is
        # re-executed through the normal dispatch path on restart.
        self.recovery: Optional[RecoveryStore] = None
        self._crashed = False
        self._replaying = False
        self.crashed_at: Optional[float] = None
        self.restarted_at: Optional[float] = None

        self._init_routing_state()

        # Border-broker state.
        self._clients: Dict[str, _ClientRegistration] = {}
        self._counterparts: Dict[str, VirtualCounterpart] = {}

        # Logical mobility: token -> per-broker subscription state, and the
        # neighbours the location-dependent subscription was forwarded to.
        self._logical_states: Dict[str, LogicalSubscriptionState] = {}
        self._logical_forwarded_to: Dict[str, Set[str]] = {}

        # Relocation bookkeeping (benchmarks read this).
        self.relocation_records: List[RelocationRecord] = []

        # Counters used by tests and diagnostics.  This is *the same
        # dict* as ``self.metrics.counters`` — the registry sees every
        # increment without a second write.
        self.counters: Dict[str, int] = self.metrics.counters
        self.counters.update({
            "notifications_received": 0,
            "notifications_forwarded": 0,
            "notifications_delivered": 0,
            "notifications_buffered_counterpart": 0,
            "notifications_buffered_relocation": 0,
            "admin_received": 0,
            "mobility_received": 0,
            "fetch_requests_sent": 0,
            "replays_sent": 0,
            "advert_gate_hits": 0,
            "advert_gate_misses": 0,
            "messages_dropped_down": 0,
            "recovery_log_replayed": 0,
            "control_received": 0,
            "heartbeats_sent": 0,
            "forwards_retained": 0,
            "forwards_acked": 0,
            "retention_evicted": 0,
            "retention_replayed": 0,
        })

    def _init_routing_state(self) -> None:
        """(Re)create every piece of volatile routing state.

        Called once from ``__init__`` and again by :meth:`crash`: the
        routing tables, forwarded bookkeeping and all derived caches are
        exactly what a process crash destroys, so resetting them *is* the
        crash.  Existing links survive (they model the network's wiring,
        re-established on restart) and get fresh empty per-neighbour
        state.
        """
        strategy = self.strategy
        self.subscription_table = RoutingTable()
        self.advertisement_table = RoutingTable()
        # Liveness: neighbour -> clock reading of the last heartbeat heard
        # from it.  Volatile on purpose — a restarted broker must re-earn
        # its lease before neighbours consider it alive again.
        self.heartbeat_last_heard: Dict[str, float] = {}
        # In-flight retention (config.forward_retention): per-neighbour
        # window of (link_seq, notification) forwards not yet acked, the
        # next outgoing link sequence, and the highest link sequence
        # processed from each neighbour.  All volatile: the *upstream*
        # copy is what protects a crashing broker's in-flight traffic.
        self._retained_forwards: Dict[str, Deque[Tuple[int, Notification]]] = {}
        self._forward_link_seq: Dict[str, int] = {}
        self._forward_recv_seq: Dict[str, int] = {}
        # neighbour -> {(filter key, subject): Filter} already forwarded there
        self._forwarded_subscriptions: Dict[str, Dict[Tuple[Any, str], Filter]] = {}
        self._forwarded_advertisements: Dict[str, Dict[Tuple[Any, str], Filter]] = {}

        # Incremental forwarding refresh: per-neighbour dirty flags driven
        # by the routing tables' per-destination change deltas, plus the
        # per-neighbour strategy reduction reused across refreshes.  A
        # change to subscription rows of destination D affects the desired
        # set of every neighbour except D; an advertisement row of
        # destination D only gates what is forwarded *to* D.
        self._covering_cache: CoveringCache = get_covering_cache()
        self._forwarding_dirty: Dict[str, bool] = {}
        self._selection_states: Dict[str, Any] = {}
        # Delta-driven desired sets: one NeighbourForwardingState per
        # neighbour, fed by the subscription table's row-level deltas.
        # Active when both config flags are on and the strategy's
        # reduction can be maintained incrementally.
        self._delta_mode = (
            self.config.incremental_forwarding
            and self.config.delta_forwarding
            and strategy.delta_reduction is not None
            and not strategy.floods_notifications
        )
        self._delta_covers = (
            self._covering_cache.covers
            if strategy.delta_reduction in ("covering", "merging")
            else None
        )
        # Merging strategies maintain a greedy-merge forest between the
        # input entries and the covering selection (see
        # repro.filters.merge_state).
        self._delta_merging = strategy.delta_reduction == "merging"
        self._delta_states: Dict[str, NeighbourForwardingState] = {}
        # neighbour -> (advertisement-table epoch for that neighbour,
        #               {filter key: overlap verdict}) — see _advertised_via.
        self._advertised_via_cache: Dict[str, Tuple[int, Dict[Any, bool]]] = {}
        # neighbour -> (selection list, {filter key: assigned cover});
        # valid while the strategy returns the identical selection object.
        self._cover_memo: Dict[str, Tuple[List[Filter], Dict[Any, Filter]]] = {}
        # Bound for the two per-neighbour memo dicts above: they are
        # cleared (not evicted entry-wise) when they grow past this, the
        # same policy the global CoveringCache uses.
        self._memo_limit = 65536
        self.subscription_table.add_listener(self._on_subscription_rows_changed)
        self.advertisement_table.add_listener(self._on_advertisement_rows_changed)
        if self._delta_mode:
            self.subscription_table.add_delta_listener(self)
        # Compiled notification data plane: a counting index over the
        # subscription table plus per-neighbour advertisement overlap
        # indexes, maintained from both tables' row-level deltas (see
        # repro.dispatch).  ``None`` selects the scan oracle.
        self._dispatch_plan: Optional[DispatchPlan] = (
            DispatchPlan(
                self.subscription_table,
                self.advertisement_table,
                vectorised=self.config.vectorised_dispatch,
            )
            if self.config.indexed_dispatch
            else None
        )
        # Fresh empty per-neighbour state for links that already exist
        # (no-op on first init, where no link is registered yet).
        for neighbour in self._links:
            self._forwarded_subscriptions[neighbour] = {}
            self._forwarded_advertisements[neighbour] = {}
            self._forwarding_dirty[neighbour] = True
            if self._delta_mode:
                self._delta_states[neighbour] = NeighbourForwardingState(
                    self._delta_covers, merging=self._delta_merging
                )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_link(self, link: Channel) -> None:
        """Register the outgoing link to a neighbour broker."""
        if link.source != self.name:
            raise ValueError(
                "link source {} does not match broker {}".format(link.source, self.name)
            )
        self._links[link.target] = link
        self._forwarded_subscriptions.setdefault(link.target, {})
        self._forwarded_advertisements.setdefault(link.target, {})
        self._forwarding_dirty[link.target] = True
        if self._delta_mode and link.target not in self._delta_states:
            self._delta_states[link.target] = NeighbourForwardingState(
                self._delta_covers, merging=self._delta_merging
            )

    def attach_telemetry(self, telemetry: Optional[Any]) -> None:
        """Attach (or with ``None``, detach) the per-broker event emitter.

        *telemetry* is a :class:`repro.telemetry.emitter.BrokerTelemetry`
        (duck-typed here to keep the broker's imports lean); while
        attached, the broker emits span/log events through it.
        """
        self._telemetry = telemetry

    def neighbours(self) -> List[str]:
        """Names of neighbouring brokers, sorted."""
        return sorted(self._links)

    def link_to(self, neighbour: str) -> Channel:
        """The outgoing link to *neighbour* (raises ``KeyError`` if absent)."""
        return self._links[neighbour]

    def is_border_broker(self) -> bool:
        """``True`` when at least one client is (or was) attached here."""
        return bool(self._clients) or bool(self._counterparts)

    # ------------------------------------------------------------------
    # Message entry points
    # ------------------------------------------------------------------
    def receive(self, message: Message, link: Channel) -> None:
        """Handle a message arriving over a broker-to-broker link."""
        if self._crashed:
            # A crashed process reads nothing off the wire; the message
            # is lost (and attributed) exactly like a link-level drop.
            self.counters["messages_dropped_down"] += 1
            if self.trace is not None:
                self.trace.record_drop(
                    self.clock.now, link.source, self.name, message, "broker-down"
                )
            return
        self._journal(link.source, message)
        self._dispatch(message, from_destination=link.source)

    def receive_batch(self, messages: Sequence[Message], link: Channel) -> None:
        """Handle a run of messages delivered together by one link flush.

        Behaviourally identical to calling :meth:`receive` once per
        message in order — same deliveries, same forwards, same traces —
        but runs of consecutive :class:`Notification`\\ s carrying the
        same attribute signature share one matching pass: the dispatch
        plan is probed once per distinct signature and the per-message
        side effects (counters, spans, forwards, local delivery) replay
        in arrival order.  The sim backend's batched links call this
        instead of per-message ``receive`` (see
        ``PubSubNetwork._connect``); everything else keeps the
        one-message entry point.
        """
        run: List[Notification] = []
        for message in messages:
            if self._crashed:
                self.counters["messages_dropped_down"] += 1
                if self.trace is not None:
                    self.trace.record_drop(
                        self.clock.now, link.source, self.name, message, "broker-down"
                    )
                continue
            if type(message) is Notification:
                run.append(message)
                continue
            if run:
                self._dispatch_notification_run(run, link.source)
                run = []
            self._journal(link.source, message)
            self._dispatch(message, from_destination=link.source)
        if run:
            self._dispatch_notification_run(run, link.source)

    @_attributed
    def _dispatch_notification_run(
        self, run: Sequence[Notification], from_destination: str
    ) -> None:
        """Process consecutive notifications, amortising repeated matches.

        Notifications are journaled by nobody (:meth:`_journal` skips
        them) and handled in arrival order; within the run, messages with
        the same canonical attribute signature reuse the first message's
        matched rows instead of re-probing the index.  Matching is a pure
        function of the attributes, and the routing tables cannot change
        between the messages of one run (only admin traffic moves them,
        and admin messages split the run), so the reuse is exact.
        """
        plan = self._dispatch_plan
        if len(run) == 1 or plan is None or not plan.vectorised:
            # Nothing to amortise (the scan oracle derives its forwarding
            # set separately, and the pure-counting mode stays a strict
            # per-message oracle; both keep the single-message path).
            for notification in run:
                self.counters["notifications_received"] += 1
                self._handle_notification(notification, from_destination)
            return
        matched_cache: Dict[Any, List[Any]] = {}
        reused_signatures: Set[Any] = set()
        for notification in run:
            self.counters["notifications_received"] += 1
            signature = _attribute_signature(notification.attributes)
            if signature is None:
                self._handle_notification(notification, from_destination)
                continue
            cached = matched_cache.get(signature)
            if cached is None:
                matched_cache[signature] = self._handle_notification(
                    notification, from_destination
                )
            else:
                if signature not in reused_signatures:
                    reused_signatures.add(signature)
                    dispatch_stats.current.batched_groups += 1
                self._handle_notification(
                    notification, from_destination, matched_entries=cached
                )

    def _journal(self, origin: str, message: Message) -> None:
        """Append an admin/mobility message to the recovery log.

        Notifications are never journaled: the routing state is a
        function of administrative traffic only, and durable redelivery
        is the counterpart/sequence machinery's job, not the log's.
        Replayed entries are not re-journaled.
        """
        if self.recovery is None or self._replaying:
            return
        if message.kind in (MessageKind.NOTIFICATION, MessageKind.CONTROL):
            # Notifications: routing state is a function of admin traffic
            # only.  Control traffic (heartbeats, forward acks): liveness
            # and retention windows are volatile by design.
            return
        if isinstance(message, FetchRequest):
            # A FetchRequest's table effect depends on volatile state (is
            # there a counterpart here?) that a replay cannot reconstruct;
            # _handle_fetch_request journals the equivalent Subscribe /
            # Unsubscribe operations for the branch it actually took.
            return
        self.recovery.append(origin, message, self.clock.now)

    @_attributed
    def _dispatch(self, message: Message, from_destination: Optional[str]) -> None:
        if isinstance(message, Notification):
            self.counters["notifications_received"] += 1
            self._handle_notification(message, from_destination)
        elif isinstance(message, SequencedForward):
            self.counters["notifications_received"] += 1
            self._handle_sequenced_forward(message, from_destination)
        elif isinstance(message, ForwardAck):
            self.counters["control_received"] += 1
            self._handle_forward_ack(message, from_destination)
        elif isinstance(message, Heartbeat):
            self.counters["control_received"] += 1
            self._handle_heartbeat(message, from_destination)
        elif isinstance(message, Subscribe):
            self.counters["admin_received"] += 1
            self._handle_subscribe(message, from_destination)
        elif isinstance(message, Unsubscribe):
            self.counters["admin_received"] += 1
            self._handle_unsubscribe(message, from_destination)
        elif isinstance(message, Advertise):
            self.counters["admin_received"] += 1
            self._handle_advertise(message, from_destination)
        elif isinstance(message, Unadvertise):
            self.counters["admin_received"] += 1
            self._handle_unadvertise(message, from_destination)
        elif isinstance(message, MovedSubscribe):
            self.counters["mobility_received"] += 1
            self._handle_moved_subscribe(message, from_destination)
        elif isinstance(message, FetchRequest):
            self.counters["mobility_received"] += 1
            self._handle_fetch_request(message, from_destination)
        elif isinstance(message, Replay):
            self.counters["mobility_received"] += 1
            self._handle_replay(message, from_destination)
        elif isinstance(message, RelocationComplete):
            self.counters["mobility_received"] += 1
            self._handle_relocation_complete(message, from_destination)
        elif isinstance(message, LocationDependentSubscribe):
            self.counters["mobility_received"] += 1
            self._handle_location_dependent_subscribe(message, from_destination)
        elif isinstance(message, LocationDependentUnsubscribe):
            self.counters["mobility_received"] += 1
            self._handle_location_dependent_unsubscribe(message, from_destination)
        elif isinstance(message, LocationUpdate):
            self.counters["mobility_received"] += 1
            self._handle_location_update(message, from_destination)
        else:
            raise TypeError("broker {} cannot handle message {!r}".format(self.name, message))

    # ------------------------------------------------------------------
    # Crash / restart lifecycle
    # ------------------------------------------------------------------
    @property
    def is_crashed(self) -> bool:
        """Whether the broker is currently down (between crash and restart)."""
        return self._crashed

    def enable_recovery(self, store: Optional[RecoveryStore] = None) -> RecoveryStore:
        """Attach a recovery store; admin traffic is journaled from now on.

        *store* selects the backend — any :class:`RecoveryStore`
        implementation, e.g. a :class:`~repro.broker.recovery.
        DiskRecoveryStore`; ``None`` attaches the in-memory default.
        Enable recovery *before* routing state is built up (or take a
        snapshot right after enabling) — the log only captures traffic
        processed while the store is attached.
        """
        if self.recovery is None:
            self.recovery = store if store is not None else RecoveryStore(self.name)
        elif store is not None and store is not self.recovery:
            raise ValueError(
                "broker {} already has a recovery store attached".format(self.name)
            )
        return self.recovery

    def take_snapshot(self) -> RoutingSnapshot:
        """Checkpoint the routing state into the recovery store.

        The snapshot covers the log written so far, so the store drops
        that prefix; a subsequent restart decodes the snapshot and
        replays only the tail.
        """
        if self.recovery is None:
            raise ValueError("broker {} has no recovery store".format(self.name))
        snapshot = build_snapshot(self, log_index=self.recovery.log_index)
        self.recovery.install_snapshot(snapshot)
        return snapshot

    def crash(self) -> None:
        """Simulate a process crash: all volatile state is lost.

        The broker object survives — its name and links are the
        network's wiring, re-established on restart — but routing
        tables, forwarding bookkeeping, derived caches, client
        registrations, virtual counterparts, relocation buffers and
        logical-mobility state are gone.  Messages arriving while down
        are dropped (recorded with reason ``"broker-down"``).  The
        recovery store, modelling stable storage, survives.
        """
        if self._crashed:
            raise ValueError("broker {} is already down".format(self.name))
        self._crashed = True
        self.crashed_at = self.clock.now
        if self._telemetry is not None:
            self._telemetry.log("error", "broker crashed")
        self._init_routing_state()
        self._clients.clear()
        self._counterparts.clear()
        self._logical_states.clear()
        self._logical_forwarded_to.clear()

    def restart(self) -> int:
        """Bring a crashed broker back, recovering routing state.

        Applies the stored snapshot (rows recreated with their pinned
        creation sequence numbers), then replays the log tail through
        the normal dispatch path with every outgoing link swapped for a
        :class:`~repro.broker.recovery.ReplaySink` — the replay must
        evolve local state exactly as the first execution did without
        re-sending anything.  Derived structures are invalidated and
        rebuilt lazily from the recovered tables.  Returns the number of
        log records replayed.
        """
        if not self._crashed:
            raise ValueError("broker {} is not down".format(self.name))
        self._crashed = False
        self.restarted_at = self.clock.now
        replayed = 0
        if self.recovery is not None:
            snapshot = self.recovery.snapshot()
            if snapshot is not None:
                apply_snapshot(self, snapshot)
            tail = self.recovery.log_tail()
            real_links = self._links
            self._links = {
                neighbour: ReplaySink(self.name, neighbour) for neighbour in real_links
            }
            self._replaying = True
            try:
                for record in tail:
                    self._dispatch(record.entry, from_destination=record.origin)
            finally:
                self._links = real_links
                self._replaying = False
            replayed = len(tail)
            self.counters["recovery_log_replayed"] += replayed
        self._mark_all_forwarding_dirty()
        if self._telemetry is not None:
            self._telemetry.log(
                "info", "broker restarted ({} log records replayed)".format(replayed)
            )
        return replayed

    def attached_clients(self) -> List[Any]:
        """The currently attached client objects (crash orchestration)."""
        return [
            registration.client
            for registration in self._clients.values()
            if registration.attached
        ]

    # ------------------------------------------------------------------
    # Client-facing API (the border-broker side of the client library)
    # ------------------------------------------------------------------
    def attach_client(self, client: Any) -> None:
        """Attach *client* (an object exposing ``client_id`` and ``deliver``)."""
        client_id = client.client_id
        registration = self._clients.get(client_id)
        if registration is None:
            self._clients[client_id] = _ClientRegistration(client=client)
        else:
            registration.client = client
            registration.attached = True

    def detach_client(self, client_id: str, keep_counterpart: bool = True) -> None:
        """Detach a client, converting its subscriptions into virtual counterparts.

        The routing entries stay in place so matching notifications keep
        flowing here and get buffered — the "virtual counterpart of a
        roaming client at the last known location" of Section 4.1.

        With ``keep_counterpart=False`` the broker keeps the routing
        entries but buffers nothing; matching notifications arriving for
        the absent client are simply lost.  This is the behaviour of an
        unmodified pub/sub system and is only used by the naive-roaming
        baseline that reproduces Figure 2.
        """
        registration = self._clients.get(client_id)
        if registration is None:
            return
        registration.attached = False
        if not keep_counterpart:
            return
        for record in registration.subscriptions.values():
            token = record.token
            if token in self._counterparts:
                continue
            counterpart = VirtualCounterpart(
                client_id=record.client_id,
                subscription_id=record.subscription_id,
                filter_=record.filter,
                next_sequence=record.next_sequence,
                max_buffer=self.config.counterpart_max_buffer,
            )
            counterpart.created_at = self.clock.now
            self._counterparts[token] = counterpart

    @_attributed
    def client_subscribe(
        self, client_id: str, subscription_id: str, filter_: Filter
    ) -> None:
        """Register a plain (location-independent) subscription for a local client."""
        registration = self._require_client(client_id)
        record = _SubscriptionRecord(
            client_id=client_id, subscription_id=subscription_id, filter=filter_
        )
        registration.subscriptions[subscription_id] = record
        token = record.token
        self._journal(client_id, Subscribe(filter_, subject=token))
        self.subscription_table.add(filter_, client_id, token)
        self._refresh_all_forwarding(exclude=client_id)

    @_attributed
    def client_unsubscribe(self, client_id: str, subscription_id: str) -> None:
        """Withdraw a local client's subscription and propagate the change."""
        registration = self._require_client(client_id)
        record = registration.subscriptions.pop(subscription_id, None)
        if record is None:
            return
        token = record.token
        if record.logical is not None:
            self._journal(
                client_id,
                LocationDependentUnsubscribe(
                    client_id=client_id, subscription_id=subscription_id
                ),
            )
            self._teardown_logical_subscription(token)
        else:
            self._journal(client_id, Unsubscribe(record.filter, subject=token))
        self.subscription_table.remove(record.filter, client_id, token)
        self._refresh_all_forwarding(exclude=client_id)

    @_attributed
    def client_advertise(self, client_id: str, advertisement_id: str, filter_: Filter) -> None:
        """Register a local client's advertisement and flood it to neighbours."""
        registration = self._require_client(client_id)
        registration.advertisements[advertisement_id] = filter_
        subject = subscription_token(client_id, advertisement_id)
        self._journal(client_id, Advertise(filter_, subject=subject))
        self.advertisement_table.add(filter_, client_id, subject)
        self._propagate_advertisement(filter_, subject, exclude=client_id)
        # A new local advertisement can make remote subscriptions routable
        # toward us; nothing to refresh locally (we are the producer side).

    @_attributed
    def client_unadvertise(self, client_id: str, advertisement_id: str) -> None:
        """Withdraw a local client's advertisement."""
        registration = self._require_client(client_id)
        filter_ = registration.advertisements.pop(advertisement_id, None)
        if filter_ is None:
            return
        subject = subscription_token(client_id, advertisement_id)
        self._journal(client_id, Unadvertise(filter_, subject=subject))
        self.advertisement_table.remove(filter_, client_id, subject)
        self._withdraw_advertisement(filter_, subject, exclude=client_id)

    @_attributed
    def client_publish(self, client_id: str, notification: Notification) -> None:
        """Inject a notification published by a locally attached client."""
        self._require_client(client_id)
        if self.trace is not None:
            self.trace.record_publish(self.clock.now, notification)
        self.counters["notifications_received"] += 1
        self._handle_notification(notification, from_destination=client_id)

    @_attributed
    def client_moved_subscribe(
        self,
        client_id: str,
        subscription_id: str,
        filter_: Filter,
        last_sequence: int,
    ) -> None:
        """Handle the re-issued subscription of a client that roamed to this broker.

        This is step 3 of the paper's Figure 5: the client re-issues the
        subscription together with the last received sequence number
        (``(C, F, 123)``).  Neither the client nor this broker needs to
        know the old border broker.
        """
        registration = self._require_client(client_id)
        token = subscription_token(client_id, subscription_id)
        record = _SubscriptionRecord(
            client_id=client_id,
            subscription_id=subscription_id,
            filter=filter_,
            next_sequence=last_sequence + 1,
        )
        registration.subscriptions[subscription_id] = record
        started = RelocationRecord(
            client_id=client_id,
            subscription_id=subscription_id,
            old_border=None,
            new_border=self.name,
            started_at=self.clock.now,
        )
        self.relocation_records.append(started)

        # Degenerate case: the client re-attached at its old border broker.
        local_counterpart = self._counterparts.pop(token, None)
        if local_counterpart is not None:
            # Only the table row survives a crash of this branch (the
            # counterpart is volatile), so the log records a plain
            # Subscribe: replaying a MovedSubscribe against a recovered
            # table without the counterpart would forward it upstream,
            # which the original execution never did.
            self._journal(client_id, Subscribe(filter_, subject=token))
            started.old_border = self.name
            replayed = local_counterpart.replay_after(last_sequence)
            self.subscription_table.add(filter_, client_id, token)
            for sequenced in replayed:
                self._deliver_to_client(record, sequenced.notification, sequenced.sequence)
            if replayed:
                record.next_sequence = replayed[-1].sequence + 1
            started.replayed = len(replayed)
            started.completed_at = self.clock.now
            self._refresh_all_forwarding(exclude=client_id)
            return

        # Normal case: buffer new-path notifications until the replay
        # arrives, register the subscription locally, and look for the
        # junction starting at this broker.
        self._journal(
            client_id,
            MovedSubscribe(
                client_id=client_id,
                subscription_id=subscription_id,
                filter_=filter_,
                last_sequence=last_sequence,
                new_border=self.name,
            ),
        )
        record.relocation_buffer = RelocationBuffer(client_id, subscription_id, last_sequence)
        old_destinations = self._token_destinations(token, exclude={client_id})
        self.subscription_table.add(filter_, client_id, token)
        if old_destinations:
            # This broker already lies on the old delivery path: it is the
            # junction itself.
            self._act_as_junction(token, filter_, last_sequence, old_destinations)
        else:
            forwarded = self._forward_moved_subscribe(
                MovedSubscribe(
                    client_id=client_id,
                    subscription_id=subscription_id,
                    filter_=filter_,
                    last_sequence=last_sequence,
                    new_border=self.name,
                ),
                exclude=client_id,
            )
            if forwarded == 0:
                # No direction could possibly lead to the old location (an
                # isolated broker, or no matching advertisements at all):
                # complete the relocation immediately with an empty replay
                # so the client does not wait forever.
                record.relocation_buffer = None
                started.completed_at = self.clock.now
        self._refresh_all_forwarding(exclude=client_id)

    @_attributed
    def takeover_subscribe(
        self,
        client_id: str,
        subscription_id: str,
        filter_: Filter,
        last_sequence: int,
        dead_border: str,
        seen_identities: Iterable[Tuple[str, int]] = (),
    ) -> None:
        """Adopt a durable subscription whose border broker crashed.

        Neighbour takeover reuses the relocation bookkeeping but not the
        fetch/replay handshake: the old border is known to be *dead*, so
        there is no counterpart to fetch from — whatever it had buffered
        died with it (the durable guarantee is preserved because takeover
        happens while the delivery path through this broker is intact, so
        matching notifications keep flowing here rather than into the
        crashed broker).  Routing entries pointing at the dead broker are
        dropped and the client's row is added.

        With ``config.forward_retention`` on, the retained unacked window
        toward *dead_border* is the exact set of notifications that may
        have died in flight inside the crashed broker; the matching ones
        the client has not already seen (*seen_identities*, the
        ``(publisher, publisher_seq)`` pairs it received) are redelivered
        here with fresh sequence numbers — closing the in-flight loss
        window.  Without retention the relocation completes with zero
        replay, as before.
        """
        registration = self._require_client(client_id)
        token = subscription_token(client_id, subscription_id)
        record = _SubscriptionRecord(
            client_id=client_id,
            subscription_id=subscription_id,
            filter=filter_,
            next_sequence=last_sequence + 1,
        )
        registration.subscriptions[subscription_id] = record
        for entry in list(self.subscription_table.entries_for_subject(token)):
            if entry.destination != dead_border:
                continue
            self._journal(dead_border, Unsubscribe(entry.filter, subject=token))
            self.subscription_table.remove(entry.filter, dead_border, token)
        self._journal(client_id, Subscribe(filter_, subject=token))
        self.subscription_table.add(filter_, client_id, token)
        replayed = 0
        if self.config.forward_retention is not None:
            seen = set(seen_identities)
            for _, notification in list(self._retained_forwards.get(dead_border, ())):
                if notification.identity in seen:
                    continue
                if not filter_.matches(notification.attributes):
                    continue
                seen.add(notification.identity)
                sequence = record.next_sequence
                record.next_sequence += 1
                self.counters["retention_replayed"] += 1
                self._deliver_to_client(record, notification, sequence)
                replayed += 1
        now = self.clock.now
        self.relocation_records.append(
            RelocationRecord(
                client_id=client_id,
                subscription_id=subscription_id,
                old_border=dead_border,
                new_border=self.name,
                started_at=now,
                completed_at=now,
                replayed=replayed,
            )
        )
        self._refresh_all_forwarding(exclude=client_id)

    def client_location_dependent_subscribe(
        self,
        client_id: str,
        subscription_id: str,
        location_filter: LocationDependentFilter,
        movement_graph: Any,
        plan: Any,
        initial_location: str,
    ) -> None:
        """Register a location-dependent subscription for a local client (Section 5)."""
        registration = self._require_client(client_id)
        state = LogicalSubscriptionState(
            client_id=client_id,
            subscription_id=subscription_id,
            location_filter=location_filter,
            movement_graph=movement_graph,
            plan=plan,
            current_location=initial_location,
            hop_index=0,
        )
        record = _SubscriptionRecord(
            client_id=client_id,
            subscription_id=subscription_id,
            filter=state.current_filter(),
            logical=state,
        )
        registration.subscriptions[subscription_id] = record
        token = record.token
        self._journal(
            client_id,
            LocationDependentSubscribe(
                client_id=client_id,
                subscription_id=subscription_id,
                location_filter=location_filter,
                movement_graph=movement_graph,
                plan=plan,
                current_location=initial_location,
                hop_index=0,
            ),
        )
        self._logical_states[token] = state
        self._logical_forwarded_to[token] = set()
        # Logical tokens are excluded from the generic refresh, so the set
        # of logical states is an input of every neighbour's desired set.
        self._mark_all_forwarding_dirty()
        self.subscription_table.add(record.filter, client_id, token)
        message = LocationDependentSubscribe(
            client_id=client_id,
            subscription_id=subscription_id,
            location_filter=location_filter,
            movement_graph=movement_graph,
            plan=plan,
            current_location=initial_location,
            hop_index=1,
        )
        self._forward_location_dependent_subscribe(message, exclude=client_id)

    def client_set_location(self, client_id: str, new_location: str) -> None:
        """Handle a location change of a locally attached, logically mobile client."""
        registration = self._require_client(client_id)
        for record in registration.subscriptions.values():
            if record.logical is None:
                continue
            self._journal(
                client_id,
                LocationUpdate(
                    client_id=client_id,
                    subscription_id=record.subscription_id,
                    old_location=record.logical.current_location,
                    new_location=new_location,
                    hop_index=record.logical.hop_index,
                ),
            )
            self._apply_location_change(record.token, new_location, from_destination=client_id)

    def client_last_delivered_sequence(self, client_id: str, subscription_id: str) -> int:
        """The last sequence number delivered to a local subscription (0 if none)."""
        registration = self._clients.get(client_id)
        if registration is None:
            return 0
        record = registration.subscriptions.get(subscription_id)
        if record is None:
            return 0
        return record.next_sequence - 1

    # ------------------------------------------------------------------
    # Notification handling
    # ------------------------------------------------------------------
    def _handle_notification(
        self,
        notification: Notification,
        from_destination: Optional[str],
        matched_entries: Optional[List[Any]] = None,
    ) -> Optional[List[Any]]:
        """Forward and deliver one notification; returns the matched rows.

        *matched_entries* short-circuits the dispatch pass with rows a
        batched run already matched for an identical attribute signature
        (see :meth:`_dispatch_notification_run`); the forwarding set and
        every side effect are still computed per message.
        """
        attributes = notification.attributes
        plan = self._dispatch_plan
        if plan is not None:
            # One counting pass answers both questions: which neighbours
            # the notification must be forwarded to, and which local rows
            # it is delivered against.
            if matched_entries is None:
                increments_before = dispatch_stats.current.count_increments
                matched_entries = plan.match(attributes)
                count_increments = dispatch_stats.current.count_increments - increments_before
            else:
                count_increments = 0
            if self.strategy.floods_notifications:
                forward_to = set(self._links)
            else:
                forward_to = {
                    entry.destination
                    for entry in matched_entries
                    if entry.destination in self._links
                }
        else:
            # Scan oracle: the routing table's candidate engine, queried
            # once for the forwarding set and once for the local rows.
            count_increments = 0
            if self.strategy.floods_notifications:
                forward_to = set(self._links)
            else:
                forward_to = {
                    destination
                    for destination in self.subscription_table.matching_destinations(attributes)
                    if destination in self._links
                }
            matched_entries = self.subscription_table.matching_entries(attributes)
        if from_destination in forward_to:
            forward_to.discard(from_destination)
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.span(
                trace_id_of(notification),
                HOP_DISPATCH,
                peer=from_destination,
                attrs={
                    "matched": len(matched_entries),
                    "forwards": len(forward_to),
                    "local_origin": from_destination not in self._links,
                },
            )
            self.metrics.observe("dispatch_fanout", len(forward_to))
            # Per-notification counting cost, dispatch_fanout-style: how
            # many per-filter counter bumps this match performed (0 on
            # the vectorised path and on reused batched matches).
            self.metrics.observe("dispatch_count_increments", count_increments)
        retention = self.config.forward_retention
        for neighbour in sorted(forward_to):
            self.counters["notifications_forwarded"] += 1
            if telemetry is not None:
                telemetry.span(trace_id_of(notification), HOP_FORWARD, peer=neighbour)
            if retention is None:
                self._links[neighbour].send(notification)
            else:
                self._send_retained_forward(neighbour, notification, retention)

        # Local delivery (including buffering into counterparts).
        self._deliver_locally(notification, from_destination, matched_entries)
        return matched_entries

    # ------------------------------------------------------------------
    # In-flight retention (config.forward_retention)
    # ------------------------------------------------------------------
    def _send_retained_forward(
        self, neighbour: str, notification: Notification, window: int
    ) -> None:
        """Forward *notification* wrapped with a link sequence, retaining it.

        The copy stays in the per-neighbour window until the neighbour's
        cumulative ack covers it; a bounded window evicts oldest-first
        (``retention_evicted`` counts the evictions — an eviction is a
        reopened loss window, so sizing shows up in the counters).
        """
        sequence = self._forward_link_seq.get(neighbour, 0) + 1
        self._forward_link_seq[neighbour] = sequence
        buffer = self._retained_forwards.setdefault(neighbour, deque())
        buffer.append((sequence, notification))
        self.counters["forwards_retained"] += 1
        while len(buffer) > window:
            buffer.popleft()
            self.counters["retention_evicted"] += 1
        self._links[neighbour].send(
            SequencedForward(notification, sender=self.name, link_seq=sequence)
        )

    def _handle_sequenced_forward(
        self, message: SequencedForward, from_destination: Optional[str]
    ) -> None:
        """Unwrap a retained forward, process it, and ack it cumulatively."""
        if from_destination is not None:
            previous = self._forward_recv_seq.get(from_destination, 0)
            self._forward_recv_seq[from_destination] = max(previous, message.link_seq)
        self._handle_notification(message.notification, from_destination)
        if from_destination in self._links and not self._replaying:
            self._links[from_destination].send(
                ForwardAck(
                    sender=self.name,
                    upto=self._forward_recv_seq.get(from_destination, message.link_seq),
                )
            )

    def _handle_forward_ack(
        self, message: ForwardAck, from_destination: Optional[str]
    ) -> None:
        buffer = self._retained_forwards.get(from_destination)
        if not buffer:
            return
        while buffer and buffer[0][0] <= message.upto:
            buffer.popleft()
            self.counters["forwards_acked"] += 1

    def retained_forwards(self, neighbour: str) -> List[Tuple[int, Notification]]:
        """The currently retained (unacked) window toward *neighbour*."""
        return list(self._retained_forwards.get(neighbour, ()))

    # ------------------------------------------------------------------
    # Heartbeats (liveness beacons consumed by the failure detector)
    # ------------------------------------------------------------------
    def emit_heartbeats(self) -> None:
        """Send one :class:`Heartbeat` to every neighbour (no-op while down)."""
        if self._crashed:
            return
        now = self.clock.now
        for neighbour in self.neighbours():
            self.counters["heartbeats_sent"] += 1
            self._links[neighbour].send(Heartbeat(sender=self.name, sent_at=now))

    def _handle_heartbeat(
        self, message: Heartbeat, from_destination: Optional[str]
    ) -> None:
        if from_destination is not None:
            self.heartbeat_last_heard[from_destination] = self.clock.now

    def _deliver_locally(
        self,
        notification: Notification,
        from_destination: Optional[str],
        matched_entries: Sequence[Any],
    ) -> None:
        # Both dispatch modes produce the same *set* of matched rows but
        # in implementation-specific orders; sort on the stable (row
        # destination, row creation seq) key so delivery order — and with
        # it every trace — is deterministic and mode-independent.
        for entry in sorted(matched_entries, key=_entry_sort_key):
            destination = entry.destination
            if destination in self._links or destination == from_destination:
                continue
            registration = self._clients.get(destination)
            for token in sorted(entry.subjects):
                counterpart = self._counterparts.get(token)
                if counterpart is not None:
                    counterpart.buffer(notification)
                    self.counters["notifications_buffered_counterpart"] += 1
                    continue
                if registration is None or not registration.attached:
                    continue
                client_id, _, subscription_id = token.partition("/")
                record = registration.subscriptions.get(subscription_id)
                if record is None:
                    continue
                if record.relocation_buffer is not None and not record.relocation_buffer.complete:
                    record.relocation_buffer.hold(notification)
                    self.counters["notifications_buffered_relocation"] += 1
                    continue
                sequence = record.next_sequence
                record.next_sequence += 1
                self._deliver_to_client(record, notification, sequence)

    def _deliver_to_client(
        self, record: _SubscriptionRecord, notification: Notification, sequence: int
    ) -> None:
        registration = self._clients.get(record.client_id)
        if registration is None or not registration.attached:
            return
        self.counters["notifications_delivered"] += 1
        if self._telemetry is not None:
            self._telemetry.span(
                trace_id_of(notification),
                HOP_DELIVER,
                peer=record.client_id,
                attrs={"sequence": sequence},
            )
        if self.trace is not None:
            self.trace.record_delivery(
                self.clock.now,
                record.client_id,
                record.subscription_id,
                notification,
                sequence=sequence,
            )
        registration.client.deliver(record.subscription_id, notification, sequence)

    # ------------------------------------------------------------------
    # Plain subscription / advertisement handling
    # ------------------------------------------------------------------
    def _handle_subscribe(self, message: Subscribe, from_destination: Optional[str]) -> None:
        if from_destination is None:
            raise ValueError("broker-level Subscribe requires a source destination")
        self.subscription_table.add(message.filter, from_destination, message.subject)
        self._refresh_all_forwarding(exclude=from_destination)

    def _handle_unsubscribe(self, message: Unsubscribe, from_destination: Optional[str]) -> None:
        if from_destination is None:
            raise ValueError("broker-level Unsubscribe requires a source destination")
        self.subscription_table.remove(message.filter, from_destination, message.subject)
        self._refresh_all_forwarding(exclude=from_destination)

    def _handle_advertise(self, message: Advertise, from_destination: Optional[str]) -> None:
        if from_destination is None:
            raise ValueError("broker-level Advertise requires a source destination")
        self.advertisement_table.add(message.filter, from_destination, message.subject)
        self._propagate_advertisement(message.filter, message.subject, exclude=from_destination)
        # Subscriptions may now become forwardable toward the advertiser.
        self.refresh_forwarding(from_destination)
        self._reforward_logical_subscriptions(toward=from_destination)

    def _handle_unadvertise(self, message: Unadvertise, from_destination: Optional[str]) -> None:
        if from_destination is None:
            raise ValueError("broker-level Unadvertise requires a source destination")
        self.advertisement_table.remove(message.filter, from_destination, message.subject)
        self._withdraw_advertisement(message.filter, message.subject, exclude=from_destination)
        self.refresh_forwarding(from_destination)

    def _propagate_advertisement(
        self, filter_: Filter, subject: str, exclude: Optional[str]
    ) -> None:
        for neighbour in self.neighbours():
            if neighbour == exclude:
                continue
            forwarded = self._forwarded_advertisements[neighbour]
            key = (filter_.key(), subject)
            if key in forwarded:
                continue
            forwarded[key] = filter_
            self._links[neighbour].send(
                Advertise(filter_, subject=self.name, subscription_id=subject)
            )

    def _withdraw_advertisement(
        self, filter_: Filter, subject: str, exclude: Optional[str]
    ) -> None:
        for neighbour in self.neighbours():
            if neighbour == exclude:
                continue
            forwarded = self._forwarded_advertisements[neighbour]
            key = (filter_.key(), subject)
            if key not in forwarded:
                continue
            del forwarded[key]
            self._links[neighbour].send(
                Unadvertise(filter_, subject=self.name, subscription_id=subject)
            )

    # ------------------------------------------------------------------
    # Subscription forwarding (the strategy-driven refresh primitive)
    # ------------------------------------------------------------------
    def _on_subscription_rows_changed(self, destination: Optional[str]) -> None:
        """Routing-table delta: rows of *destination* changed.

        The desired forwarding set of neighbour ``N`` is computed from the
        rows of every destination *except* ``N``, so only ``N ==
        destination`` stays clean.
        """
        for neighbour in self._forwarding_dirty:
            if neighbour != destination:
                self._forwarding_dirty[neighbour] = True

    def _on_advertisement_rows_changed(self, destination: Optional[str]) -> None:
        """Advertisement delta: rows of *destination* changed.

        Advertisements received from ``N`` gate which subscriptions are
        forwarded *to* ``N``, so only that neighbour becomes dirty.
        """
        if destination is None:
            self._mark_all_forwarding_dirty()
            return
        if destination in self._forwarding_dirty:
            self._forwarding_dirty[destination] = True
        # Advertisements gate which filters enter this neighbour's input;
        # the per-filter verdicts may flip wholesale, so the delta state
        # must be rebuilt from the table on its next refresh.
        state = self._delta_states.get(destination)
        if state is not None:
            state.valid = False

    def _mark_all_forwarding_dirty(self) -> None:
        for neighbour in self._forwarding_dirty:
            self._forwarding_dirty[neighbour] = True
        # Logical-mobility changes (the callers of this method) alter
        # which subjects count as plain, which the delta states gate on:
        # rebuild them from the table on their next refresh.
        for state in self._delta_states.values():
            state.valid = False

    # ------------------------------------------------------------------
    # Routing-table delta listener (see RoutingTable.add_delta_listener):
    # applies row-level changes directly to the cached per-neighbour
    # desired sets, making routing changes O(affected entries).
    # ------------------------------------------------------------------
    def row_subject_added(self, row, subject: str, created_row: bool) -> None:
        if subject in self._logical_states or isinstance(row.filter, MatchNone):
            return
        filter_ = row.filter
        destination = row.destination
        use_advertisements = self.config.use_advertisements
        for neighbour, state in self._delta_states.items():
            if neighbour == destination or not state.valid:
                continue
            if use_advertisements and not self._advertised_via(neighbour, filter_):
                continue
            state.add_contribution(filter_, subject, row.seq)

    def row_subjects_removed(self, row, subjects: Sequence[str], removed_row: bool) -> None:
        if isinstance(row.filter, MatchNone):
            return
        plain = [subject for subject in subjects if subject not in self._logical_states]
        if not plain:
            return
        filter_ = row.filter
        filter_key = filter_.key()
        destination = row.destination
        use_advertisements = self.config.use_advertisements
        for neighbour, state in self._delta_states.items():
            if neighbour == destination or not state.valid:
                continue
            if use_advertisements and not self._advertised_via(neighbour, filter_):
                continue
            for subject in plain:
                state.remove_contribution(filter_key, subject, row.seq)

    def table_reset(self) -> None:
        for state in self._delta_states.values():
            state.valid = False

    def _refresh_all_forwarding(self, exclude: Optional[str] = None) -> None:
        for neighbour in self.neighbours():
            if neighbour == exclude:
                continue
            self.refresh_forwarding(neighbour)

    @_attributed
    def refresh_forwarding(self, neighbour: str) -> None:
        """Bring the subscriptions forwarded to *neighbour* in line with the tables."""
        if neighbour not in self._links:
            # Not a neighbour (e.g. a locally attached client named as the
            # source of a replayed log entry): nothing is forwarded there.
            return
        incremental = self.config.incremental_forwarding
        if incremental and not self._forwarding_dirty.get(neighbour, True):
            # Nothing relevant to this neighbour changed since the last
            # refresh, so the forwarded set already equals the desired set.
            return
        if self._delta_mode:
            state = self._delta_states[neighbour]
            if not state.valid:
                self._rebuild_delta_state(neighbour, state)
            elif state.order_dirty:
                # Canonical input positions shifted (a filter's first
                # contributing row died while later rows survived) or a
                # merging state's input filters changed structurally:
                # re-reduce from the maintained entries — no table scan.
                state.rebuild_reduction(self._covering_cache)
            self._forwarding_dirty[neighbour] = False
            forwarded = self._forwarded_subscriptions[neighbour]
            to_add, to_remove = state.diff_against(forwarded)
            self._emit_forwarding_diff(neighbour, forwarded, to_add, to_remove)
            return
        desired = self._desired_forwarding(neighbour)
        if incremental:
            self._forwarding_dirty[neighbour] = False
        forwarded = self._forwarded_subscriptions[neighbour]
        to_add = {key: filt for key, filt in desired.items() if key not in forwarded}
        to_remove = {key: filt for key, filt in forwarded.items() if key not in desired}
        self._emit_forwarding_diff(neighbour, forwarded, to_add, to_remove)

    def _emit_forwarding_diff(
        self,
        neighbour: str,
        forwarded: Dict[Tuple[Any, str], Filter],
        to_add: Dict[Tuple[Any, str], Filter],
        to_remove: Dict[Tuple[Any, str], Filter],
    ) -> None:
        link = self._links[neighbour]
        # Subscribe before unsubscribing so covering replacements never
        # leave a gap in which matching notifications would not be routed.
        for (filter_key, subject), filter_ in sorted(to_add.items(), key=_forwarding_sort_key):
            forwarded[(filter_key, subject)] = filter_
            link.send(Subscribe(filter_, subject=subject))
        for (filter_key, subject), filter_ in sorted(to_remove.items(), key=_forwarding_sort_key):
            del forwarded[(filter_key, subject)]
            link.send(Unsubscribe(filter_, subject=subject))

    def _rebuild_delta_state(self, neighbour: str, state: NeighbourForwardingState) -> None:
        """Rebuild a neighbour's delta state from one subscription-table scan."""
        no_logical = not self._logical_states
        use_advertisements = self.config.use_advertisements

        def plain_subjects(row):
            if row.destination == neighbour or isinstance(row.filter, MatchNone):
                return None
            if no_logical:
                subjects = row.subjects
            else:
                subjects = [
                    subject for subject in row.subjects if subject not in self._logical_states
                ]
                if not subjects:
                    return None
            if use_advertisements and not self._advertised_via(neighbour, row.filter):
                return None
            return subjects

        state.rebuild_from_rows(
            self.subscription_table.entries(), plain_subjects, self._covering_cache
        )

    def _desired_forwarding(self, neighbour: str) -> Dict[Tuple[Any, str], Filter]:
        """The (filter, subject) pairs that should be registered at *neighbour*."""
        if self.strategy.floods_notifications:
            return {}
        incremental = self.config.incremental_forwarding
        if (
            incremental
            and self.config.use_advertisements
            and not self.advertisement_table.has_destination(neighbour)
        ):
            # No advertisement was ever received from this neighbour, so
            # the gate below rejects every entry: skip the table scan.
            return self._assign_covers_incremental(neighbour, [])
        entries = []
        no_logical = not self._logical_states
        for entry in self.subscription_table.entries():
            if entry.destination == neighbour:
                continue
            # A MatchNone subscription accepts nothing: forwarding it
            # upstream would only cost administrative traffic.  Every
            # forwarding mode skips such rows (the delta path drops them
            # in row_subject_added / _rebuild_delta_state).
            if isinstance(entry.filter, MatchNone):
                continue
            # Location-dependent subscriptions are propagated by their own
            # protocol (LocationDependentSubscribe / LocationUpdate), not by
            # the generic refresh.
            if no_logical:
                # Read-only use of the entry's own subject set; avoids one
                # set copy per entry on the hot path.
                plain_subjects = entry.subjects
            else:
                plain_subjects = {
                    subject for subject in entry.subjects if subject not in self._logical_states
                }
            if not plain_subjects:
                continue
            if self.config.use_advertisements and not self._advertised_via(neighbour, entry.filter):
                continue
            entries.append((entry.filter, plain_subjects))
        if incremental:
            return self._assign_covers_incremental(neighbour, entries)
        if not entries:
            return {}
        filters = [filter_ for filter_, _ in entries]
        selected = self.strategy.desired_forwarding_set(filters)
        desired: Dict[Tuple[Any, str], Filter] = {}
        for filter_, subjects in entries:
            cover = self._find_cover(selected, filter_)
            if cover is None:
                # The strategy should always produce a cover; fall back to
                # forwarding the filter itself to stay correct.
                cover = filter_
            for subject in subjects:
                desired[(cover.key(), subject)] = cover
        return desired

    def _assign_covers_incremental(
        self, neighbour: str, entries: Sequence[Tuple[Filter, Set[str]]]
    ) -> Dict[Tuple[Any, str], Filter]:
        """Incremental-path equivalent of the from-scratch tail of
        :meth:`_desired_forwarding`: reuse the previous strategy reduction
        and memoise both covering tests and per-filter cover assignment.
        """
        filters = [filter_ for filter_, _ in entries]
        selected, state = self.strategy.update_forwarding_set(
            self._selection_states.get(neighbour), filters, cache=self._covering_cache
        )
        self._selection_states[neighbour] = state
        if not entries:
            return {}
        # Cover assignment depends only on the selection (content *and*
        # order), so the per-filter-key memo stays valid for as long as the
        # strategy keeps returning the very same selection list.
        memo = self._cover_memo.get(neighbour)
        if memo is None or memo[0] is not selected:
            memo = (selected, {})
            self._cover_memo[neighbour] = memo
        cover_by_key = memo[1]
        covers = self._covering_cache.covers
        selected_by_key = None
        desired: Dict[Tuple[Any, str], Filter] = {}
        for filter_, subjects in entries:
            filter_key = filter_.key()
            cover = cover_by_key.get(filter_key)
            if cover is None:
                if len(cover_by_key) >= self._memo_limit:
                    cover_by_key.clear()
                if selected_by_key is None:
                    selected_by_key = {candidate.key(): candidate for candidate in selected}
                cover = selected_by_key.get(filter_key)
                if cover is None:
                    for candidate in selected:
                        if covers(candidate, filter_):
                            cover = candidate
                            break
                if cover is None:
                    # The strategy should always produce a cover; fall back
                    # to forwarding the filter itself to stay correct.
                    cover = filter_
                cover_by_key[filter_key] = cover
            cover_key = cover.key()
            for subject in subjects:
                desired[(cover_key, subject)] = cover
        return desired

    @staticmethod
    def _find_cover(selected: Sequence[Filter], filter_: Filter) -> Optional[Filter]:
        for candidate in selected:
            if candidate.key() == filter_.key():
                return candidate
        for candidate in selected:
            if filter_covers(candidate, filter_):
                return candidate
        return None

    def _advertised_via(self, neighbour: str, filter_: Filter) -> bool:
        """Whether an overlapping advertisement was received from *neighbour*.

        In incremental mode the verdict is memoised per (neighbour, filter
        key); the memo for a neighbour is discarded wholesale whenever that
        neighbour's advertisement rows change (tracked by the table's
        per-destination epoch), so it can never go stale.  With
        ``indexed_dispatch`` on, memo misses (and every query in
        non-incremental mode) are answered by the dispatch plan's
        per-neighbour overlap index instead of a linear scan over the
        neighbour's advertisement entries; both return identical verdicts.
        """
        plan = self._dispatch_plan
        if not self.config.incremental_forwarding:
            if plan is not None:
                return plan.advertised_via(neighbour, filter_)
            for entry in self.advertisement_table.entries_for_destination(neighbour):
                if filters_overlap_hint(entry.filter, filter_):
                    return True
            return False
        epoch = self.advertisement_table.destination_epoch(neighbour)
        cached = self._advertised_via_cache.get(neighbour)
        if cached is None or cached[0] != epoch:
            cached = (epoch, {})
            self._advertised_via_cache[neighbour] = cached
        verdicts = cached[1]
        key = filter_.key()
        verdict = verdicts.get(key)
        if verdict is None:
            self.counters["advert_gate_misses"] += 1
            if len(verdicts) >= self._memo_limit:
                verdicts.clear()
            if plan is not None:
                verdict = plan.advertised_via(neighbour, filter_)
            else:
                verdict = False
                for entry in self.advertisement_table.entries_for_destination(neighbour):
                    if filters_overlap_hint(entry.filter, filter_):
                        verdict = True
                        break
            verdicts[key] = verdict
        else:
            self.counters["advert_gate_hits"] += 1
        return verdict

    # ------------------------------------------------------------------
    # Physical mobility: relocation protocol (Section 4)
    # ------------------------------------------------------------------
    def _token_destinations(self, token: str, exclude: Set[str]) -> List[str]:
        """Destinations of existing routing entries registered for *token*."""
        return sorted(
            {
                entry.destination
                for entry in self.subscription_table.entries_for_subject(token)
                if entry.destination not in exclude
            }
        )

    def _forward_moved_subscribe(self, message: MovedSubscribe, exclude: Optional[str]) -> int:
        """Propagate a MovedSubscribe toward producers (it must find the junction).

        Returns the number of neighbours the message was forwarded to.
        """
        token = subscription_token(message.client_id, message.subscription_id)
        count = 0
        for neighbour in self.neighbours():
            if neighbour == exclude:
                continue
            if self.config.use_advertisements and not self._advertised_via(
                neighbour, message.filter
            ):
                continue
            forwarded = self._forwarded_subscriptions[neighbour]
            forwarded[(message.filter.key(), token)] = message.filter
            # The forwarded set was changed behind refresh_forwarding's
            # back; force the next refresh to reconcile it.
            self._forwarding_dirty[neighbour] = True
            state = self._delta_states.get(neighbour)
            if state is not None:
                state.full_diff = True
            self._links[neighbour].send(message)
            count += 1
        return count

    def _handle_moved_subscribe(
        self, message: MovedSubscribe, from_destination: Optional[str]
    ) -> None:
        if from_destination is None:
            raise ValueError("MovedSubscribe over a link requires a source")
        token = subscription_token(message.client_id, message.subscription_id)
        exclude = {from_destination}
        old_destinations = self._token_destinations(token, exclude=exclude)
        self.subscription_table.add(message.filter, from_destination, token)
        if old_destinations:
            self._act_as_junction(token, message.filter, message.last_sequence, old_destinations)
        else:
            self._forward_moved_subscribe(message, exclude=from_destination)
        self._refresh_all_forwarding(exclude=from_destination)

    def _act_as_junction(
        self,
        token: str,
        filter_: Filter,
        last_sequence: int,
        old_destinations: Sequence[str],
    ) -> None:
        """Junction behaviour: divert the old path and request the replay.

        The junction removes its routing entries toward the old location,
        sends a fetch request along each of them, and from this moment on
        routes newly received notifications along the new path only
        (Section 4.1: "already starts routing all newly received
        notifications from P along the new path").
        """
        client_id, _, subscription_id = token.partition("/")
        for destination in old_destinations:
            entry = None
            for candidate in self.subscription_table.entries_for_subject(token):
                if candidate.destination == destination:
                    entry = candidate
                    break
            if entry is None:
                continue
            self.subscription_table.remove(entry.filter, destination, token)
            counterpart = self._counterparts.get(token)
            if destination not in self._links:
                # The "old path" ends right here: this broker hosts the
                # virtual counterpart (it is the old border broker).
                if counterpart is not None:
                    self._replay_counterpart(token, last_sequence, toward=None)
                continue
            self.counters["fetch_requests_sent"] += 1
            self._links[destination].send(
                FetchRequest(
                    client_id=client_id,
                    subscription_id=subscription_id,
                    filter_=filter_,
                    last_sequence=last_sequence,
                    junction=self.name,
                    new_border=self.name,
                )
            )

    def _handle_fetch_request(self, message: FetchRequest, from_destination: Optional[str]) -> None:
        if from_destination is None:
            raise ValueError("FetchRequest over a link requires a source")
        token = subscription_token(message.client_id, message.subscription_id)

        # The old border broker: replay the buffered notifications.
        if token in self._counterparts:
            # Divert our routing entry for the token toward the fetch sender
            # so that the replay (and any straggler notifications) flow back
            # toward the junction and on to the new location.
            for entry in list(self.subscription_table.entries_for_subject(token)):
                self._journal(entry.destination, Unsubscribe(entry.filter, subject=token))
                self.subscription_table.remove(entry.filter, entry.destination, token)
            self._journal(from_destination, Subscribe(message.filter, subject=token))
            self.subscription_table.add(message.filter, from_destination, token)
            self._replay_counterpart(token, message.last_sequence, toward=from_destination)
            self._refresh_all_forwarding(exclude=from_destination)
            return

        # An intermediate broker on the old path: divert the routing entry
        # toward the fetch sender and forward the fetch along the old path.
        old_entries = [
            entry
            for entry in self.subscription_table.entries_for_subject(token)
            if entry.destination != from_destination
        ]
        if not old_entries:
            # Nothing known about this subscription (already cleaned up, or
            # a duplicate fetch from a second junction): drop the request.
            return
        link_bound = [entry for entry in old_entries if entry.destination in self._links]
        if not link_bound:
            # The remaining entries point at locally attached clients, not
            # along an old path — this happens when the old border crashed
            # and the subscription was adopted here by takeover.  There is
            # no counterpart anywhere (it died with the old border), so
            # terminate the protocol: answer with an empty replay so the
            # requester's relocation buffer flushes instead of waiting
            # forever.  The local client rows are left untouched.
            self._journal(from_destination, Subscribe(message.filter, subject=token))
            self.subscription_table.add(message.filter, from_destination, token)
            self.counters["replays_sent"] += 1
            link = self._links.get(from_destination)
            if link is not None:
                link.send(
                    Replay(
                        client_id=message.client_id,
                        subscription_id=message.subscription_id,
                        notifications=[],
                        origin_border=self.name,
                    )
                )
                link.send(
                    RelocationComplete(
                        client_id=message.client_id,
                        subscription_id=message.subscription_id,
                        origin_border=self.name,
                    )
                )
            self._refresh_all_forwarding(exclude=from_destination)
            return
        for entry in link_bound:
            destination = entry.destination
            self._journal(destination, Unsubscribe(entry.filter, subject=token))
            self.subscription_table.remove(entry.filter, destination, token)
            self._links[destination].send(message)
        self._journal(from_destination, Subscribe(message.filter, subject=token))
        self.subscription_table.add(message.filter, from_destination, token)
        self._refresh_all_forwarding(exclude=from_destination)

    def _replay_counterpart(self, token: str, last_sequence: int, toward: Optional[str]) -> None:
        """Ship the buffered suffix back toward the new location and clean up."""
        counterpart = self._counterparts.pop(token, None)
        if counterpart is None:
            return
        client_id, _, subscription_id = token.partition("/")
        replayed = counterpart.replay_after(last_sequence)
        self.counters["replays_sent"] += 1
        replay = Replay(
            client_id=client_id,
            subscription_id=subscription_id,
            notifications=replayed,
            origin_border=self.name,
        )
        complete = RelocationComplete(
            client_id=client_id,
            subscription_id=subscription_id,
            origin_border=self.name,
        )
        if toward is not None and toward in self._links:
            self._links[toward].send(replay)
            self._links[toward].send(complete)
        else:
            # The junction is this broker itself (old border == junction):
            # route the replay along the token's current entries.
            self._route_for_token(replay, token, exclude=None)
            self._route_for_token(complete, token, exclude=None)
        # The old client registration (if any) can now be garbage collected.
        registration = self._clients.get(client_id)
        if registration is not None and not registration.attached:
            registration.subscriptions.pop(subscription_id, None)
            if not registration.subscriptions:
                self._clients.pop(client_id, None)

    def _route_for_token(self, message: Message, token: str, exclude: Optional[str]) -> bool:
        """Forward *message* along the routing entries registered for *token*.

        Returns ``True`` when the message was forwarded to at least one
        neighbour or handled locally.
        """
        routed = False
        for entry in self.subscription_table.entries_for_subject(token):
            destination = entry.destination
            if destination == exclude:
                continue
            if destination in self._links:
                self._links[destination].send(message)
                routed = True
            else:
                routed = self._handle_token_message_locally(message, token) or routed
        return routed

    def _handle_token_message_locally(self, message: Message, token: str) -> bool:
        """Deliver a Replay / RelocationComplete that reached the new border broker."""
        client_id, _, subscription_id = token.partition("/")
        registration = self._clients.get(client_id)
        if registration is None:
            return False
        record = registration.subscriptions.get(subscription_id)
        if record is None or record.relocation_buffer is None:
            return False
        buffer_ = record.relocation_buffer
        if isinstance(message, Replay):
            buffer_.accept_replay(message.notifications)
            return True
        if isinstance(message, RelocationComplete):
            replayed, fresh = buffer_.flush()
            for sequenced in replayed:
                self._deliver_to_client(record, sequenced.notification, sequenced.sequence)
            if replayed:
                record.next_sequence = max(record.next_sequence, replayed[-1].sequence + 1)
            for notification in fresh:
                sequence = record.next_sequence
                record.next_sequence += 1
                self._deliver_to_client(record, notification, sequence)
            record.relocation_buffer = None
            for relocation in reversed(self.relocation_records):
                if (
                    relocation.client_id == client_id
                    and relocation.subscription_id == subscription_id
                    and relocation.completed_at is None
                ):
                    relocation.completed_at = self.clock.now
                    relocation.old_border = message.origin_border
                    relocation.replayed = len(replayed)
                    relocation.fresh = len(fresh)
                    break
            return True
        return False

    def _handle_replay(self, message: Replay, from_destination: Optional[str]) -> None:
        token = subscription_token(message.client_id, message.subscription_id)
        self._route_for_token(message, token, exclude=from_destination)

    def _handle_relocation_complete(
        self, message: RelocationComplete, from_destination: Optional[str]
    ) -> None:
        token = subscription_token(message.client_id, message.subscription_id)
        self._route_for_token(message, token, exclude=from_destination)

    # ------------------------------------------------------------------
    # Logical mobility (Section 5)
    # ------------------------------------------------------------------
    def _forward_location_dependent_subscribe(
        self, message: LocationDependentSubscribe, exclude: Optional[str]
    ) -> None:
        token = subscription_token(message.client_id, message.subscription_id)
        forwarded_to = self._logical_forwarded_to.setdefault(token, set())
        if self.strategy.floods_notifications:
            # Under flooding, notifications reach every broker anyway; the
            # location-dependent part degenerates to pure client-side
            # filtering at the border broker (Figure 3b).
            return
        probe_filter = message.location_filter.base_filter
        for neighbour in self.neighbours():
            if neighbour == exclude:
                continue
            if self.config.use_advertisements and not self._advertised_via(neighbour, probe_filter):
                continue
            forwarded_to.add(neighbour)
            self._links[neighbour].send(message)

    def _reforward_logical_subscriptions(self, toward: str) -> None:
        """Forward held location-dependent subscriptions toward a newly advertised direction.

        A location-dependent subscription issued before the matching
        advertisement has propagated cannot be forwarded immediately; when
        the advertisement later arrives from *toward*, the subscription is
        sent after it (the same late binding the generic
        :meth:`refresh_forwarding` performs for plain subscriptions).
        """
        if toward not in self._links or self.strategy.floods_notifications:
            return
        for token, state in self._logical_states.items():
            forwarded_to = self._logical_forwarded_to.setdefault(token, set())
            if toward in forwarded_to:
                continue
            if self.config.use_advertisements and not self._advertised_via(
                toward, state.location_filter.base_filter
            ):
                continue
            forwarded_to.add(toward)
            self._links[toward].send(
                LocationDependentSubscribe(
                    client_id=state.client_id,
                    subscription_id=state.subscription_id,
                    location_filter=state.location_filter,
                    movement_graph=state.movement_graph,
                    plan=state.plan,
                    current_location=state.current_location,
                    hop_index=state.hop_index + 1,
                )
            )

    def _handle_location_dependent_subscribe(
        self, message: LocationDependentSubscribe, from_destination: Optional[str]
    ) -> None:
        if from_destination is None:
            raise ValueError("LocationDependentSubscribe over a link requires a source")
        token = subscription_token(message.client_id, message.subscription_id)
        state = LogicalSubscriptionState(
            client_id=message.client_id,
            subscription_id=message.subscription_id,
            location_filter=message.location_filter,
            movement_graph=message.movement_graph,
            plan=message.plan,
            current_location=message.current_location,
            hop_index=message.hop_index,
        )
        self._logical_states[token] = state
        self._mark_all_forwarding_dirty()
        self.subscription_table.add(state.current_filter(), from_destination, token)
        self._forward_location_dependent_subscribe(message.for_next_hop(), exclude=from_destination)

    def _handle_location_dependent_unsubscribe(
        self, message: LocationDependentUnsubscribe, from_destination: Optional[str]
    ) -> None:
        token = subscription_token(message.client_id, message.subscription_id)
        self._teardown_logical_subscription(token, forward=True)

    def _teardown_logical_subscription(self, token: str, forward: bool = True) -> None:
        state = self._logical_states.pop(token, None)
        if state is not None:
            self._mark_all_forwarding_dirty()
        self.subscription_table.remove_subject(token)
        forwarded_to = self._logical_forwarded_to.pop(token, set())
        if state is None or not forward:
            return
        message = LocationDependentUnsubscribe(
            client_id=state.client_id, subscription_id=state.subscription_id
        )
        for neighbour in forwarded_to:
            if neighbour in self._links:
                self._links[neighbour].send(message)

    def _handle_location_update(
        self, message: LocationUpdate, from_destination: Optional[str]
    ) -> None:
        token = subscription_token(message.client_id, message.subscription_id)
        self._apply_location_change(token, message.new_location, from_destination)

    def _apply_location_change(
        self, token: str, new_location: str, from_destination: Optional[str]
    ) -> None:
        state = self._logical_states.get(token)
        if state is None:
            return
        old_location = state.current_location
        delta = state.apply_location_change(new_location)

        # Update the stored routing entry (and, at the border broker, the
        # client-side filter used for exact delivery filtering).
        entries = list(self.subscription_table.entries_for_subject(token))
        for entry in entries:
            self.subscription_table.remove(entry.filter, entry.destination, token)
            self.subscription_table.add(delta.new_filter, entry.destination, token)
        client_id, _, subscription_id = token.partition("/")
        registration = self._clients.get(client_id)
        if registration is not None:
            record = registration.subscriptions.get(subscription_id)
            if record is not None and record.logical is state:
                record.filter = delta.new_filter

        # Decide whether the update needs to travel further toward the
        # producers.  The next hop's filter changes iff ploc at its level
        # differs between old and new location.
        forward = True
        if not self.config.propagate_unchanged_location_updates:
            next_level = state.plan.level_for_hop(state.hop_index + 1)
            next_steps = next_level + state.location_filter.vicinity
            ploc = state._ploc  # deliberate: reuse the memoised ploc
            forward = ploc(old_location, next_steps) != ploc(new_location, next_steps)
        if not forward:
            return
        update = LocationUpdate(
            client_id=client_id,
            subscription_id=subscription_id,
            old_location=old_location,
            new_location=new_location,
            hop_index=state.hop_index + 1,
        )
        for neighbour in self._logical_forwarded_to.get(token, set()):
            if neighbour == from_destination:
                continue
            if neighbour in self._links:
                self._links[neighbour].send(update)

    # ------------------------------------------------------------------
    # Introspection helpers used by tests, experiments and benchmarks
    # ------------------------------------------------------------------
    def routing_table_size(self) -> int:
        """Number of rows in the subscription routing table."""
        return len(self.subscription_table)

    def forwarded_subscription_count(self, neighbour: str) -> int:
        """Number of (filter, subject) pairs currently forwarded to *neighbour*."""
        return len(self._forwarded_subscriptions.get(neighbour, {}))

    def counterpart_for(self, client_id: str, subscription_id: str) -> Optional[VirtualCounterpart]:
        """The virtual counterpart for a subscription, if one exists here."""
        return self._counterparts.get(subscription_token(client_id, subscription_id))

    def has_counterparts(self) -> bool:
        """``True`` when any virtual counterpart is currently held here."""
        return bool(self._counterparts)

    def logical_state_for(
        self, client_id: str, subscription_id: str
    ) -> Optional[LogicalSubscriptionState]:
        """The logical-mobility state for a subscription, if this broker has one."""
        return self._logical_states.get(subscription_token(client_id, subscription_id))

    def _require_client(self, client_id: str) -> _ClientRegistration:
        registration = self._clients.get(client_id)
        if registration is None or not registration.attached:
            raise ValueError(
                "client {} is not attached to broker {}".format(client_id, self.name)
            )
        return registration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Broker({}, strategy={}, clients={}, table={})".format(
            self.name, self.strategy.name, sorted(self._clients), len(self.subscription_table)
        )
