"""White-box tests of broker internals: forwarding refresh, junction
 detection, counterpart handling and introspection helpers."""

import pytest

from repro.broker.base import subscription_token
from repro.broker.network import PubSubNetwork
from repro.filters.filter import Filter
from repro.messages.base import MessageKind
from repro.topology.builders import line_topology


def admin_messages_on(network, source, target, message_type=None):
    records = [
        r
        for r in network.trace.link_records
        if r.source == source and r.target == target and r.kind != MessageKind.NOTIFICATION
    ]
    if message_type is not None:
        records = [r for r in records if r.message_type == message_type]
    return records


class TestForwardingRefresh:
    def test_duplicate_subscription_not_forwarded_twice(self):
        network = PubSubNetwork(line_topology(3), strategy="covering", latency=0.01)
        producer = network.add_client("P", "B3")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("C", "B1")
        sub_id = consumer.subscribe({"topic": "news"})
        network.settle()
        count_before = len(admin_messages_on(network, "B1", "B2", "Subscribe"))
        # Re-registering the identical filter for the same subscription is
        # a no-op at the forwarding layer.
        network.broker("B1").client_subscribe("C", sub_id, Filter({"topic": "news"}))
        network.settle()
        count_after = len(admin_messages_on(network, "B1", "B2", "Subscribe"))
        assert count_after == count_before

    def test_covering_suppresses_narrower_forward(self):
        """A second, narrower subscription is not forwarded separately under
        covering routing."""
        network = PubSubNetwork(line_topology(3), strategy="covering", latency=0.01)
        producer = network.add_client("P", "B3")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("C", "B1")
        consumer.subscribe({"topic": "news"})
        network.settle()
        forwarded_before = network.broker("B1").forwarded_subscription_count("B2")
        consumer.subscribe({"topic": "news", "priority": (">", 5)})
        network.settle()
        forwarded_after = network.broker("B1").forwarded_subscription_count("B2")
        # The wider filter covers the narrower one, so the narrower
        # subscription is forwarded under the covering filter: one pair per
        # subject, but both map to the same (covering) filter.
        b2_entries = network.broker("B2").subscription_table.entries_for_destination("B1")
        distinct_filters = {entry.filter.key() for entry in b2_entries}
        assert len(distinct_filters) == 1
        assert forwarded_after >= forwarded_before

    def test_simple_routing_forwards_both_filters(self):
        network = PubSubNetwork(line_topology(3), strategy="simple", latency=0.01)
        producer = network.add_client("P", "B3")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("C", "B1")
        consumer.subscribe({"topic": "news"})
        consumer.subscribe({"topic": "news", "priority": (">", 5)})
        network.settle()
        b2_entries = network.broker("B2").subscription_table.entries_for_destination("B1")
        distinct_filters = {entry.filter.key() for entry in b2_entries}
        assert len(distinct_filters) == 2

    def test_unsubscribe_propagates_upstream(self):
        network = PubSubNetwork(line_topology(3), strategy="covering", latency=0.01)
        producer = network.add_client("P", "B3")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("C", "B1")
        sub_id = consumer.subscribe({"topic": "news"})
        network.settle()
        consumer.unsubscribe(sub_id)
        network.settle()
        assert len(admin_messages_on(network, "B1", "B2", "Unsubscribe")) == 1
        assert len(admin_messages_on(network, "B2", "B3", "Unsubscribe")) == 1
        assert network.broker("B3").routing_table_size() == 0

    def test_flooding_never_forwards_subscriptions(self):
        network = PubSubNetwork(line_topology(3), strategy="flooding", latency=0.01)
        consumer = network.add_client("C", "B1")
        consumer.subscribe({"topic": "news"})
        network.settle()
        assert admin_messages_on(network, "B1", "B2") == []


class TestJunctionAndCounterparts:
    def test_counterpart_created_per_subscription(self):
        network = PubSubNetwork(line_topology(2), strategy="covering", latency=0.01)
        producer = network.add_client("P", "B2")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("C", "B1")
        first = consumer.subscribe({"topic": "news"})
        second = consumer.subscribe({"topic": "sports"})
        network.settle()
        consumer.detach()
        broker = network.broker("B1")
        assert broker.counterpart_for("C", first) is not None
        assert broker.counterpart_for("C", second) is not None

    def test_detach_without_counterpart_drops_notifications(self):
        network = PubSubNetwork(line_topology(2), strategy="covering", latency=0.01)
        producer = network.add_client("P", "B2")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("C", "B1")
        consumer.subscribe({"topic": "news"})
        network.settle()
        network.broker("B1").detach_client("C", keep_counterpart=False)
        producer.publish({"topic": "news"})
        network.settle()
        assert consumer.received == []
        assert not network.broker("B1").has_counterparts()

    def test_junction_is_detected_where_new_path_meets_old_tree(self):
        """With the producer at B3, the old delivery tree is B3-B4-B5-B6; the
        MovedSubscribe from B1 travels toward the advertiser and first meets
        that tree at B3, which therefore acts as the junction."""
        network = PubSubNetwork(line_topology(6), strategy="covering", latency=0.01)
        producer = network.add_client("P", "B3")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("C", "B6")
        consumer.subscribe({"topic": "news"})
        network.settle()
        consumer.detach()
        network.settle()
        consumer.move_to(network.broker("B1"))
        network.settle()
        # Exactly one fetch request was sent, by the junction broker B3.
        fetch_senders = [
            name
            for name, broker in network.brokers.items()
            if broker.counters["fetch_requests_sent"] > 0
        ]
        assert fetch_senders == ["B3"]

    def test_relocation_records_capture_latency(self):
        network = PubSubNetwork(line_topology(4), strategy="covering", latency=0.05)
        producer = network.add_client("P", "B4")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("C", "B3")
        consumer.subscribe({"topic": "news"})
        network.settle()
        consumer.detach()
        producer.publish({"topic": "news"})
        network.settle()
        consumer.move_to(network.broker("B1"))
        network.settle()
        records = network.broker("B1").relocation_records
        assert len(records) == 1
        assert records[0].completed_at is not None
        assert records[0].replayed == 1
        assert records[0].old_border == "B3"


class TestBrokerGuards:
    def test_operations_on_unattached_client_rejected(self):
        from repro.messages.notification import Notification

        network = PubSubNetwork(line_topology(2), strategy="covering", latency=0.01)
        broker = network.broker("B1")
        with pytest.raises(ValueError):
            broker.client_subscribe("ghost", "sub", Filter({"a": 1}))
        with pytest.raises(ValueError):
            broker.client_publish("ghost", Notification({"a": 1}, "ghost", 1))

    def test_unknown_message_type_rejected(self):
        network = PubSubNetwork(line_topology(2), strategy="covering", latency=0.01)
        broker = network.broker("B1")
        with pytest.raises(TypeError):
            broker._dispatch(object(), from_destination="B2")  # type: ignore[arg-type]

    def test_link_source_must_match_broker(self):
        network = PubSubNetwork(line_topology(2), strategy="covering", latency=0.01)
        broker = network.broker("B1")
        foreign_link = network.links[("B2", "B1")]
        with pytest.raises(ValueError):
            broker.add_link(foreign_link)

    def test_client_name_collision_with_broker_rejected(self):
        network = PubSubNetwork(line_topology(2), strategy="covering", latency=0.01)
        with pytest.raises(ValueError):
            network.add_client("B1", "B2")

    def test_subscription_token_format(self):
        assert subscription_token("car", "sub-1") == "car/sub-1"

    def test_is_border_broker(self):
        network = PubSubNetwork(line_topology(3), strategy="covering", latency=0.01)
        network.add_client("C", "B1")
        assert network.broker("B1").is_border_broker()
        assert not network.broker("B2").is_border_broker()
