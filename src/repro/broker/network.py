"""Assembly of a complete pub/sub network from a topology.

:class:`PubSubNetwork` takes a :class:`~repro.topology.BrokerGraph`,
instantiates one :class:`~repro.broker.base.Broker` per node and one pair
of FIFO channels per edge, and exposes the handful of operations examples
and experiments need: attach clients, advance time, and read the trace.

The assembly is backend-generic: all wiring goes through a
:class:`~repro.runtime.protocols.Runtime`.  By default a
:class:`~repro.runtime.sim.SimRuntime` is created (simulated time,
latency-modelled links, deterministic event ordering — the behaviour
every experiment in this repository is pinned to); passing
``runtime=AioRuntime(...)`` runs the very same brokers on an asyncio
event loop over framed byte streams instead (see
:mod:`repro.runtime.aio`).  This module never imports the simulator
package — the backend choice is the runtime's business.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.broker.base import Broker, BrokerConfig
from repro.broker.client import Client
from repro.broker.recovery import RecoveryStore
from repro.routing.strategies import RoutingStrategy, make_strategy
from repro.runtime.protocols import Clock, Runtime
from repro.runtime.trace import TraceRecorder
from repro.telemetry import TelemetryConfig, active_telemetry_config
from repro.telemetry.emitter import BrokerTelemetry
from repro.telemetry.registry import scoped_data_plane_breakdown
from repro.topology.graph import BrokerGraph

#: Kept for backwards-compatible imports only; the authoritative default
#: lives in :mod:`repro.runtime.sim` next to the latency models it
#: parameterises (``PubSubNetwork`` defers to it via ``latency=None``).
DEFAULT_LINK_LATENCY = 0.05  # 50 ms, a typical wide-area broker link


class PubSubNetwork:
    """A broker network with attached clients, on a pluggable runtime."""

    def __init__(
        self,
        graph: BrokerGraph,
        strategy: "str | RoutingStrategy" = "covering",
        latency: Any = None,
        simulator: Optional[Clock] = None,
        trace: Optional[TraceRecorder] = None,
        config: Optional[BrokerConfig] = None,
        batch_links: bool = True,
        runtime: Optional[Runtime] = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        if runtime is None:
            # The default backend is the discrete-event simulator.  The
            # import is deliberately local: the broker layer itself stays
            # free of any simulator dependency (tests/test_layering.py
            # enforces this); the sim backend is only pulled in when a
            # caller actually asks for the default runtime.
            from repro.runtime.sim import SimRuntime

            sim_kwargs = {} if latency is None else {"latency": latency}
            runtime = SimRuntime(
                simulator=simulator,
                trace=trace,
                batch_links=batch_links,
                **sim_kwargs,
            )
        else:
            # The four sim-backend parameters configure the *default*
            # runtime; combining them with an explicit one would silently
            # drop them, so reject the conflict loudly.
            conflicting = [
                name
                for name, passed in (
                    ("latency", latency is not None),
                    ("simulator", simulator is not None),
                    ("trace", trace is not None),
                    ("batch_links", batch_links is not True),
                )
                if passed
            ]
            if conflicting:
                raise ValueError(
                    "PubSubNetwork got both an explicit runtime and the "
                    "sim-backend parameter(s) {}; configure the runtime "
                    "instead".format(", ".join(conflicting))
                )
        self.runtime = runtime
        self.clock: Clock = runtime.clock
        self.trace: TraceRecorder = runtime.trace
        self.config = config or BrokerConfig()
        if isinstance(strategy, str):
            strategy_factory: Callable[[], RoutingStrategy] = lambda: make_strategy(strategy)
        else:
            strategy_name = strategy.name
            strategy_factory = lambda: make_strategy(strategy_name)

        self.brokers: Dict[str, Broker] = {}
        for name in graph.brokers():
            self.brokers[name] = Broker(
                name=name,
                clock=self.clock,
                strategy=strategy_factory(),
                trace=self.trace,
                config=self.config,
            )
        self.links: Dict[Tuple[str, str], Any] = {}
        for left, right in graph.edges():
            self._connect(left, right)
        self.clients: Dict[str, Client] = {}
        # Clients orphaned by a crash with no scripted takeover; the
        # failure detector adopts them when a neighbour observes the
        # missed lease (see ``failover_orphans``).
        self._orphans: Dict[str, List[Client]] = {}
        self.failure_detector: Optional[FailureDetector] = None

        # Telemetry: explicit config wins, otherwise the process-wide
        # default installed with repro.telemetry.enable_telemetry().
        # When neither is set the network runs dark — no sink, no
        # emitters, no probes; every broker hook site stays a single
        # ``is not None`` check (the zero-cost-off guarantee).
        self.telemetry_sink = None
        telemetry = telemetry if telemetry is not None else active_telemetry_config()
        if telemetry is not None:
            self.telemetry_sink = telemetry.make_sink()
            for name in sorted(self.brokers):
                broker = self.brokers[name]
                broker.attach_telemetry(
                    BrokerTelemetry(self.telemetry_sink, name, self.clock)
                )
            for (source, target), link in sorted(self.links.items()):
                link.depth_probe = self.brokers[source].metrics.queue_depth_probe(
                    "{}->{}".format(source, target)
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @property
    def simulator(self) -> Clock:
        """Historical alias for :attr:`clock` (the sim backend's clock is
        the ``Simulator`` instance itself)."""
        return self.clock

    def _connect(self, left: str, right: str) -> None:
        left_broker = self.brokers[left]
        right_broker = self.brokers[right]
        forward = self.runtime.connect(left, right, right_broker.receive)
        backward = self.runtime.connect(right, left, left_broker.receive)
        # Sim links batch all messages due at one flush; hand the whole
        # run to the broker so it can amortise dispatch work across
        # notifications with identical attributes (the asyncio channels
        # deliver strictly per message and have no such hook).
        if hasattr(forward, "deliver_batch"):
            forward.deliver_batch = right_broker.receive_batch
        if hasattr(backward, "deliver_batch"):
            backward.deliver_batch = left_broker.receive_batch
        left_broker.add_link(forward)
        right_broker.add_link(backward)
        self.links[(left, right)] = forward
        self.links[(right, left)] = backward

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def broker(self, name: str) -> Broker:
        """The broker named *name*."""
        return self.brokers[name]

    def add_client(
        self,
        client_id: str,
        broker_name: str,
        notify: Optional[Callable[[str, Any, int], None]] = None,
    ) -> Client:
        """Create a client and attach it to the given border broker."""
        if client_id in self.brokers:
            raise ValueError(
                "client id {!r} collides with a broker name; use distinct names".format(client_id)
            )
        client = Client(client_id, notify=notify)
        client.attach(self.brokers[broker_name])
        self.clients[client_id] = client
        return client

    def attach_existing_client(self, client: Client, broker_name: str) -> Client:
        """Attach an externally created client to a border broker."""
        client.attach(self.brokers[broker_name])
        self.clients[client.client_id] = client
        return client

    # ------------------------------------------------------------------
    # Failures and recovery
    # ------------------------------------------------------------------
    def enable_recovery(
        self,
        *broker_names: str,
        store_factory: Optional[Callable[[str], RecoveryStore]] = None,
    ) -> None:
        """Switch on crash recovery (admin journal + snapshots).

        With no arguments every broker gets a recovery store; otherwise
        only the named ones do.  *store_factory* maps a broker name to
        the store to attach (e.g. ``lambda name: DiskRecoveryStore(name,
        tmpdir)``); ``None`` attaches the in-memory default.  Must be
        called before the admin traffic that should survive a crash —
        the journal only records what it sees.
        """
        names = broker_names or tuple(self.brokers)
        for name in names:
            store = store_factory(name) if store_factory is not None else None
            self.brokers[name].enable_recovery(store)

    def snapshot_broker(self, name: str) -> int:
        """Checkpoint *name*'s routing state, truncating its journal."""
        return self.brokers[name].take_snapshot()

    def crash_broker(self, name: str, takeover: Optional[str] = None) -> int:
        """Crash broker *name*, failing its clients over to *takeover*.

        The broker's volatile routing state is wiped (its
        :class:`~repro.broker.recovery.RecoveryStore`, standing in for
        stable storage, survives).  Attached clients drop their
        connections; when *takeover* names a neighbour broker they
        immediately fail over to it — durable subscriptions are adopted
        via the takeover path, plain ones re-subscribe fresh.  With
        ``takeover=None`` the clients stay disconnected (their border
        broker may restart later).  Returns the number of clients that
        were attached at crash time.
        """
        broker = self.brokers[name]
        orphans = broker.attached_clients()
        broker.crash()
        # Runtime-level teardown, where the backend supports it: the
        # asyncio runtime tears the channels *into* the dead broker so
        # in-flight frames are dropped (and attributed) at the transport
        # layer instead of reaching a dead process.  The simulator's
        # links need no teardown — the broker-side intake gate drops at
        # delivery time with identical trace records.
        teardown = getattr(self.runtime, "teardown_broker", None)
        if teardown is not None:
            teardown(name)
        for client in orphans:
            client.drop_connection()
            if takeover is not None:
                client.failover_to(self.brokers[takeover], name)
        if takeover is None and orphans:
            self._orphans[name] = list(orphans)
        return len(orphans)

    def failover_orphans(self, dead: str, adopter: str) -> int:
        """Fail the clients orphaned by *dead*'s crash over to *adopter*.

        Called by the failure detector when a missed lease is observed;
        returns the number of clients adopted (0 when the crash already
        had a scripted takeover or the stash was consumed).
        """
        orphans = self._orphans.pop(dead, [])
        for client in orphans:
            client.failover_to(self.brokers[adopter], dead)
        return len(orphans)

    def restart_broker(self, name: str) -> int:
        """Restart a crashed broker from snapshot + journal replay.

        Returns the number of journal records replayed.  Clients do not
        re-attach automatically — a recovered border broker is just a
        broker again; move clients back with ``client.move_to(...)``.
        """
        restore = getattr(self.runtime, "restore_broker", None)
        if restore is not None:
            restore(name)
        self._orphans.pop(name, None)
        if self.failure_detector is not None:
            self.failure_detector.broker_restarted(name)
        return self.brokers[name].restart()

    def enable_failure_detection(
        self,
        heartbeat_interval: float,
        lease_timeout: float,
        until: float,
    ) -> "FailureDetector":
        """Start heartbeat/lease failure detection with a bounded horizon.

        Every ``heartbeat_interval`` (starting now, ending at *until*)
        each live broker beacons its neighbours, then every live broker
        checks its leases: a neighbour not heard from for more than
        ``lease_timeout`` is *suspected*, and the first (lowest-named)
        observer adopts the suspect's orphaned clients via
        :meth:`failover_orphans` — the crash transition is observed, not
        scripted.  The horizon keeps ``settle()`` terminating: ticks are
        pre-scheduled, never self-rescheduling, so both the simulator's
        drain and the virtual-time asyncio drive consume them
        identically.  Returns the detector (see its ``detections``).
        """
        detector = FailureDetector(self, heartbeat_interval, lease_timeout, until)
        self.failure_detector = detector
        return detector

    # ------------------------------------------------------------------
    # Execution control
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current time on the runtime's clock."""
        return self.clock.now

    def run_until(self, time: float) -> int:
        """Advance execution to *time* (inclusive)."""
        events = self.runtime.run_until(time)
        self._emit_metric_snapshots()
        return events

    def run_for(self, duration: float) -> int:
        """Advance execution by *duration* time units."""
        return self.run_until(self.clock.now + duration)

    def settle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain (e.g. to let subscriptions propagate)."""
        events = self.runtime.settle(max_events=max_events)
        self._emit_metric_snapshots()
        return events

    def _emit_metric_snapshots(self) -> None:
        """Stream every broker's current registry state (telemetry only).

        Called at the end of every ``settle``/``run_until`` and once more
        from :meth:`close`: snapshots are cumulative, so a collector that
        keeps the latest per broker ends up holding exactly the run's
        final counters.
        """
        if self.telemetry_sink is None:
            return
        for name in sorted(self.brokers):
            broker = self.brokers[name]
            if broker._telemetry is not None:
                broker._telemetry.snapshot(broker.metrics)

    def close(self) -> None:
        """Release the runtime's resources and close any recovery stores."""
        if self.failure_detector is not None:
            self.failure_detector.cancel()
        if self.telemetry_sink is not None:
            self._emit_metric_snapshots()
            for broker in self.brokers.values():
                broker.attach_telemetry(None)
            self.telemetry_sink.close()
            self.telemetry_sink = None
        for broker in self.brokers.values():
            if broker.recovery is not None:
                broker.recovery.close()
        self.runtime.close()

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def total_messages(self, until: Optional[float] = None) -> int:
        """Total number of link traversals (notifications + admin + mobility)."""
        return self.trace.count_link_messages(until=until)

    def routing_table_sizes(self) -> Dict[str, int]:
        """Routing-table size per broker (used by the routing ablation)."""
        return {name: broker.routing_table_size() for name, broker in self.brokers.items()}

    def data_plane_breakdown(self) -> Dict[str, int]:
        """Matching/dispatch work attributable to *this* network's brokers.

        Unlike the process-global
        :func:`repro.metrics.counters.data_plane_breakdown`, this sums the
        per-broker metric registries, so two concurrently live networks
        never bleed into each other's numbers.
        """
        return scoped_data_plane_breakdown(
            [self.brokers[name].metrics for name in sorted(self.brokers)]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PubSubNetwork(brokers={}, clients={}, t={:.3f})".format(
            len(self.brokers), len(self.clients), self.clock.now
        )


class FailureDetector:
    """Heartbeat/lease failure detection over a :class:`PubSubNetwork`.

    At every tick each live broker emits one :class:`~repro.messages.
    control.Heartbeat` per neighbour link (sorted order), then each live
    broker — again in sorted order — checks its leases: a neighbour not
    heard from within ``lease_timeout`` is suspected exactly once, the
    detection is recorded in :attr:`detections`, and the observing
    broker adopts the suspect's orphaned clients.  The lease baseline is
    the detector's start time, so a silent-but-healthy neighbour is not
    suspected before it ever had a chance to beacon.

    The tick schedule is **bounded and pre-computed** (``start``,
    ``start + interval`` ... up to ``until``): both backends' settle
    semantics run every remaining event to quiescence, so a
    self-rescheduling timer would never let ``settle()`` return.  All
    scheduling goes through the runtime-agnostic
    :class:`~repro.runtime.protocols.Clock` protocol — the simulator and
    the virtual-time asyncio clock order ticks identically
    ``(time, insertion order)``, which is what keeps failure-schedule
    reports byte-identical across backends.
    """

    def __init__(
        self,
        network: PubSubNetwork,
        heartbeat_interval: float,
        lease_timeout: float,
        until: float,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if lease_timeout <= heartbeat_interval:
            raise ValueError(
                "lease_timeout must exceed heartbeat_interval "
                "(a lease shorter than one beacon period suspects everyone)"
            )
        self.network = network
        self.heartbeat_interval = float(heartbeat_interval)
        self.lease_timeout = float(lease_timeout)
        self.started_at = network.now
        self.until = float(until)
        #: (time, suspect, observer) per first-time suspicion.
        self.detections: List[Tuple[float, str, str]] = []
        self._suspected: Set[str] = set()
        self._handles: List[Any] = []
        tick_time = self.started_at
        while tick_time <= self.until + 1e-9:
            self._handles.append(
                network.clock.schedule_at(
                    tick_time, self._tick, label="failure-detector-tick"
                )
            )
            tick_time += self.heartbeat_interval

    def _tick(self) -> None:
        now = self.network.now
        brokers = self.network.brokers
        for name in sorted(brokers):
            brokers[name].emit_heartbeats()
        for name in sorted(brokers):
            observer = brokers[name]
            if observer.is_crashed:
                continue
            for neighbour in observer.neighbours():
                if neighbour in self._suspected:
                    continue
                last_heard = observer.heartbeat_last_heard.get(
                    neighbour, self.started_at
                )
                if now - last_heard > self.lease_timeout + 1e-9:
                    self._suspected.add(neighbour)
                    self.detections.append((now, neighbour, name))
                    observer.metrics.inc("failure_detections")
                    if observer._telemetry is not None:
                        observer._telemetry.log(
                            "warn",
                            "suspected {} dead (lease expired)".format(neighbour),
                        )
                    self.network.failover_orphans(neighbour, adopter=name)

    def suspected(self) -> List[str]:
        """Brokers currently suspected dead, sorted."""
        return sorted(self._suspected)

    def broker_restarted(self, name: str) -> None:
        """A suspect came back: clear it so a later crash is re-detectable."""
        self._suspected.discard(name)

    def cancel(self) -> None:
        """Cancel every remaining tick (idempotent)."""
        for handle in self._handles:
            handle.cancel()
        self._handles = []
