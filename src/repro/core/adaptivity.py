"""Adaptive choice of per-hop uncertainty levels (Section 5.3).

Every broker ``B_i`` on the path from the consumer to a producer
subscribes to ``ploc(x, level_i)`` for the consumer's current location
``x``.  The *uncertainty level* ``level_i`` decides how much "buffering"
(pre-subscription to possible future locations) the scheme inserts at hop
``i``:

* ``level_i = i`` (the *static* plan) corresponds to the introductory
  example of Section 5.1/5.2 where processing one subscription takes about
  as long as the client stays at one location (Table 2).
* The *trivial sub/unsub* end point uses ``level_i = 1`` for every hop
  ``i >= 1`` — "the algorithm always has to provide information for 'the
  next' user location" (Table 3, top).
* The *flooding* end point uses the saturating level (the movement-graph
  diameter), so every hop subscribes to all locations (Table 3, bottom).
* The *adaptive* plan (Figure 8, Table 4) compares the client's average
  dwell time Δ with the cumulative subscription processing delays
  δ₁ + ... + δᵢ: "whenever the sum of δᵢ results in a value larger than
  the next multiple of Δ then the value of ploc must take a step".

The worked example (Δ = 100 ms, δ = 120, 50, 50, 20 ms) yields levels
0, 1, 1, 2 for hops 0..3, reproducing Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

from repro.core.ploc import Location, MovementGraph, PlocFunction


class AdaptivityError(ValueError):
    """Raised for invalid timing parameters."""


def static_levels(hops: int) -> List[int]:
    """The introductory plan of Section 5.1: ``level_i = i``.

    *hops* counts the filters F0 .. F_hops, so the returned list has
    ``hops + 1`` entries ``[0, 1, 2, ..., hops]``.
    """
    if hops < 0:
        raise AdaptivityError("hops must be non-negative")
    return list(range(hops + 1))


def trivial_levels(hops: int) -> List[int]:
    """The "global sub/unsub" end point (Table 3 top): one step of look-ahead.

    Hop 0 remains exact client-side filtering; every further hop covers the
    locations reachable within one movement step.
    """
    if hops < 0:
        raise AdaptivityError("hops must be non-negative")
    return [0] + [1] * hops


def flooding_levels(hops: int, saturation: int) -> List[int]:
    """The flooding end point (Table 3 bottom): every hop covers all locations.

    *saturation* is the level at which ``ploc`` covers the whole location
    set (the movement-graph diameter).  Hop 0 still filters exactly —
    this is "flooding with client-side filtering" (Figure 3b).
    """
    if hops < 0:
        raise AdaptivityError("hops must be non-negative")
    if saturation < 0:
        raise AdaptivityError("saturation level must be non-negative")
    return [0] + [saturation] * hops


def adaptive_levels(dwell_time: float, hop_delays: Sequence[float]) -> List[int]:
    """Per-hop levels from the dwell time Δ and hop delays δ₁..δ_k (Figure 8).

    Level 0 belongs to hop 0 (client-side filtering).  For hop ``i >= 1``
    the level is one plus the number of multiples of Δ that the cumulative
    delay δ₁ + ... + δᵢ has exceeded — with a floor of one step of
    look-ahead, because the scheme "always has to provide information for
    'the next' user location to maintain the semantics of flooding"
    (Section 5.3).

    With Δ = 100 and δ = (120, 50, 50, 20) this yields ``[0, 1, 1, 2, 2]``:
    the cumulative sums are 120, 170, 220, 240, crossing the multiples 100
    (at hop 1) and 200 (at hop 3), exactly as in Figure 8 / Table 4.
    """
    if dwell_time <= 0:
        raise AdaptivityError("dwell time must be positive")
    levels = [0]
    cumulative = 0.0
    for delay in hop_delays:
        if delay < 0:
            raise AdaptivityError("hop delays must be non-negative")
        cumulative += delay
        # Count the multiples m*Δ (m >= 1) strictly exceeded by the
        # cumulative delay; a sum exactly equal to a multiple has not
        # exceeded "the next multiple" yet.
        multiples_crossed = 0
        multiple = dwell_time
        while multiple < cumulative:
            multiples_crossed += 1
            multiple += dwell_time
        levels.append(max(1, multiples_crossed))
    return levels


@dataclass
class UncertaintyPlan:
    """A concrete assignment of uncertainty levels to hops for one subscription.

    The plan is carried with a location-dependent subscription through the
    broker network; a broker at hop distance ``i`` from the consumer's
    border broker subscribes to ``ploc(x, level_for_hop(i))``.

    Parameters
    ----------
    levels:
        ``levels[i]`` is the uncertainty level at hop ``i``; hop 0 is the
        consumer-side exact filter.  Hops beyond the end of the list reuse
        the last level (the chain saturates).
    name:
        Label used by metrics and experiment output ("static", "adaptive",
        "trivial", "flooding").
    """

    levels: List[int]
    name: str = "static"

    def __post_init__(self) -> None:
        if not self.levels:
            raise AdaptivityError("an uncertainty plan needs at least the hop-0 level")
        if any(level < 0 for level in self.levels):
            raise AdaptivityError("levels must be non-negative")
        if self.levels[0] != 0:
            raise AdaptivityError("hop 0 must use level 0 (exact client-side filtering)")
        for earlier, later in zip(self.levels, self.levels[1:]):
            if later < earlier:
                raise AdaptivityError(
                    "levels must be non-decreasing along the path (got {})".format(self.levels)
                )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def static(cls, hops: int) -> "UncertaintyPlan":
        """``level_i = i`` (the Section 5.2 example plan)."""
        return cls(levels=static_levels(hops), name="static")

    @classmethod
    def trivial(cls, hops: int) -> "UncertaintyPlan":
        """The global sub/unsub end point (Table 3 top)."""
        return cls(levels=trivial_levels(hops), name="trivial")

    @classmethod
    def flooding(cls, hops: int, graph: MovementGraph) -> "UncertaintyPlan":
        """The flooding end point (Table 3 bottom) for a given movement graph."""
        return cls(levels=flooding_levels(hops, graph.diameter()), name="flooding")

    @classmethod
    def adaptive(cls, dwell_time: float, hop_delays: Sequence[float]) -> "UncertaintyPlan":
        """The adaptive plan of Section 5.3 (Figure 8 rule)."""
        return cls(levels=adaptive_levels(dwell_time, hop_delays), name="adaptive")

    # -- queries -----------------------------------------------------------------
    def level_for_hop(self, hop: int) -> int:
        """The uncertainty level a broker at hop distance *hop* should use."""
        if hop < 0:
            raise AdaptivityError("hop must be non-negative")
        if hop < len(self.levels):
            return self.levels[hop]
        return self.levels[-1]

    def max_hop(self) -> int:
        """The largest hop index with an explicitly specified level."""
        return len(self.levels) - 1

    def location_sets(
        self, ploc: PlocFunction, location: Location, hops: int
    ) -> List[FrozenSet[Location]]:
        """The concrete ``ploc`` sets for hops 0..hops at *location*.

        This is what Table 2 / Table 4 of the paper tabulate (for the
        static and adaptive plans respectively).
        """
        return [ploc(location, self.level_for_hop(hop)) for hop in range(hops + 1)]

    def describe(self) -> str:
        """Short human-readable description used in experiment output."""
        return "{} plan, levels={}".format(self.name, self.levels)
