"""Flooding with client-side filtering (Figure 3b).

"Another basic solution ... is again based on flooding.  The local broker
can then decide to deliver a notification to a client depending on the
client's current location.  Obviously, flooding prevents the blackout
periods ... but it should be equally clear that flooding is a very
expensive routing strategy especially for large pub/sub systems."
(Section 3.3)

The baseline is realised by running the network with the ``flooding``
routing strategy and registering the consumer's location-dependent
subscription normally: the border broker keeps the exact per-location
filter (``F0``) for client-side filtering and — because subscriptions are
never forwarded under flooding — location changes stay purely local.
:class:`FloodingLocationConsumer` packages that setup and exposes the same
interface as the re-subscription baseline so experiments can swap them.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from repro.broker.base import Broker
from repro.broker.client import Client
from repro.core.adaptivity import UncertaintyPlan
from repro.core.location_filter import MYLOC
from repro.core.ploc import MovementGraph


class FloodingLocationConsumer:
    """A location-aware consumer intended for flooding networks."""

    def __init__(
        self,
        client_id: str,
        base_template: Mapping[str, Any],
        movement_graph: MovementGraph,
        initial_location: str,
        location_attribute: str = "location",
        vicinity: int = 0,
    ) -> None:
        self.client = Client(client_id)
        self.movement_graph = movement_graph
        self.initial_location = initial_location
        template = dict(base_template)
        template[location_attribute] = MYLOC
        self._template = template
        self._location_attribute = location_attribute
        self._vicinity = vicinity
        self.subscription_id: Optional[str] = None

    def attach(self, broker: Broker) -> None:
        """Attach and register the location-dependent subscription."""
        self.client.attach(broker)
        # Under flooding the plan is irrelevant (nothing is forwarded); the
        # trivial plan keeps the border broker's own filter exact.
        plan = UncertaintyPlan.trivial(1)
        self.subscription_id = self.client.subscribe_location_dependent(
            self._template,
            movement_graph=self.movement_graph,
            plan=plan,
            initial_location=self.initial_location,
            location_attribute=self._location_attribute,
            vicinity=self._vicinity,
        )

    def set_location(self, location: str) -> None:
        """Follow a location change (a purely local operation under flooding)."""
        self.client.set_location(location)

    def received_identities(self) -> List[tuple]:
        """Identities of everything delivered to the consumer."""
        return self.client.received_identities()

    @property
    def client_id(self) -> str:
        """The wrapped client's identifier."""
        return self.client.client_id
