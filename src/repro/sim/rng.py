"""Seeded random number generation for reproducible experiments."""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A thin wrapper around :class:`random.Random` with a mandatory seed.

    Having the seed in the constructor (and echoing it in ``repr``) makes
    every experiment run reproducible and self-describing in traces.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def uniform(self, low: float, high: float) -> float:
        """A float drawn uniformly from [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """An exponentially distributed delay with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """An integer drawn uniformly from [low, high] (inclusive)."""
        return self._rng.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """A uniformly random element of *options*."""
        return self._rng.choice(options)

    def sample(self, options: Sequence[T], count: int) -> List[T]:
        """*count* distinct elements drawn without replacement."""
        return self._rng.sample(list(options), count)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def random(self) -> float:
        """A float in [0, 1)."""
        return self._rng.random()

    def fork(self, stream: int) -> "DeterministicRandom":
        """A new independent generator derived from this one's seed.

        Separate subsystems (workload, movement, latency jitter) should
        each use their own fork so that changing one does not perturb the
        random choices of the others.
        """
        return DeterministicRandom(self.seed * 1_000_003 + stream)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DeterministicRandom(seed={})".format(self.seed)
