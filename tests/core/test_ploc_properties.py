"""Property-based tests (hypothesis) for ploc and the uncertainty plans."""

from hypothesis import given, settings, strategies as st

from repro.core.adaptivity import UncertaintyPlan, adaptive_levels
from repro.core.ploc import MovementGraph, PlocFunction


@st.composite
def movement_graphs(draw):
    """Small random connected movement graphs (built as random trees plus extras)."""
    size = draw(st.integers(min_value=2, max_value=8))
    names = ["L{}".format(index) for index in range(size)]
    graph = MovementGraph(names)
    # Random tree backbone keeps the graph connected.
    for index in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        graph.add_edge(names[parent], names[index])
    # A few extra edges are fine for ploc (the movement graph need not be a tree).
    extra = draw(st.integers(min_value=0, max_value=size))
    for _ in range(extra):
        left = draw(st.integers(min_value=0, max_value=size - 1))
        right = draw(st.integers(min_value=0, max_value=size - 1))
        if left != right:
            graph.add_edge(names[left], names[right])
    return graph


@settings(max_examples=100, deadline=None)
@given(graph=movement_graphs(), steps=st.integers(min_value=0, max_value=6))
def test_ploc_contains_current_location(graph, steps):
    ploc = PlocFunction(graph)
    for location in graph.locations():
        assert location in ploc(location, steps)


@settings(max_examples=100, deadline=None)
@given(graph=movement_graphs(), steps=st.integers(min_value=0, max_value=5))
def test_ploc_is_monotone_in_steps(graph, steps):
    """Equation 1: ploc(x, q) ⊆ ploc(x, q + 1)."""
    ploc = PlocFunction(graph)
    for location in graph.locations():
        assert ploc(location, steps) <= ploc(location, steps + 1)


@settings(max_examples=100, deadline=None)
@given(graph=movement_graphs())
def test_ploc_saturates_at_diameter(graph):
    ploc = PlocFunction(graph)
    diameter = graph.diameter()
    for location in graph.locations():
        saturated = ploc(location, diameter)
        assert saturated == ploc(location, diameter + 3)


@settings(max_examples=100, deadline=None)
@given(graph=movement_graphs(), steps=st.integers(min_value=0, max_value=4))
def test_ploc_is_symmetric_reachability(graph, steps):
    """y ∈ ploc(x, q) iff x ∈ ploc(y, q) — movement edges are undirected."""
    ploc = PlocFunction(graph)
    locations = graph.locations()
    for x in locations:
        for y in ploc(x, steps):
            assert x in ploc(y, steps)


@settings(max_examples=200, deadline=None)
@given(
    dwell=st.floats(min_value=0.001, max_value=100.0, allow_nan=False, allow_infinity=False),
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=8,
    ),
)
def test_adaptive_levels_are_valid_plans(dwell, delays):
    """Adaptive levels always form a valid non-decreasing plan starting at 0."""
    levels = adaptive_levels(dwell, delays)
    assert levels[0] == 0
    assert all(level >= 1 for level in levels[1:])
    assert levels == sorted(levels)
    plan = UncertaintyPlan(levels=levels, name="adaptive")  # must not raise
    assert plan.level_for_hop(len(levels) + 5) == levels[-1]


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=6,
    ),
    scale=st.floats(min_value=1.5, max_value=100.0, allow_nan=False, allow_infinity=False),
)
def test_slower_clients_never_need_more_lookahead(delays, scale):
    """Increasing Δ never increases any hop's uncertainty level."""
    fast = adaptive_levels(1.0, delays)
    slow = adaptive_levels(scale, delays)
    assert all(s <= f for s, f in zip(slow, fast))
