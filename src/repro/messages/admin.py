"""Administrative (routing-table maintenance) messages.

Subscriptions and advertisements are propagated through the broker
network to maintain the routing tables (Section 2.2).  Each admin message
names the *subject* it acts for — either a client identifier (for
messages originating at a border broker's client) or a broker identifier
(for messages a broker forwards on behalf of downstream subscribers).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.filters.filter import Filter
from repro.filters.wire import filter_from_wire, filter_to_wire
from repro.messages.base import Message, MessageKind


class _FilterAdminMessage(Message):
    """Common base of the four admin message types."""

    kind = MessageKind.ADMIN

    __slots__ = ("filter", "subject", "subscription_id")

    def __init__(
        self,
        filter_: Filter,
        subject: str,
        subscription_id: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(meta)
        if not isinstance(filter_, Filter):
            raise TypeError("filter_ must be a Filter, got {!r}".format(filter_))
        self.filter = filter_
        self.subject = subject
        self.subscription_id = subscription_id

    def describe(self) -> str:
        return "{}(subject={}, sub_id={}, {})".format(
            type(self).__name__, self.subject, self.subscription_id, self.filter
        )

    def _wire_body(self) -> Dict[str, Any]:
        return {
            "filter": filter_to_wire(self.filter),
            "subject": self.subject,
            "subscription_id": self.subscription_id,
        }

    @classmethod
    def _from_wire_body(cls, payload: Dict[str, Any]) -> "_FilterAdminMessage":
        return cls(
            filter_from_wire(payload["filter"]),
            subject=payload["subject"],
            subscription_id=payload.get("subscription_id"),
        )


class Subscribe(_FilterAdminMessage):
    """Register interest in notifications matching ``filter``."""


class Unsubscribe(_FilterAdminMessage):
    """Withdraw a previously registered subscription."""


class Advertise(_FilterAdminMessage):
    """Announce that the subject will publish notifications matching ``filter``."""


class Unadvertise(_FilterAdminMessage):
    """Withdraw a previously issued advertisement."""
