"""Table 4 / Figure 8 — adaptive ploc levels for concrete timing values.

The paper's worked example uses Δ = 100 ms and per-hop subscription
processing delays δ₁ = 120, δ₂ = 50, δ₃ = 50, δ₄ = 20 ms.  Figure 8 puts
the cumulative sums on a time line against the multiples of Δ; the
resulting per-hop ploc values (Table 4) are::

    t  x=a          x=b          x=c          x=d
    0  {a}          {b}          {c}          {d}
    1  {a,b,c}      {a,b,d}      {a,c,d}      {b,c,d}
    2  {a,b,c}      {a,b,d}      {a,c,d}      {b,c,d}
    3  {a,b,c,d}    {a,b,c,d}    {a,b,c,d}    {a,b,c,d}

i.e. uncertainty levels 0, 1, 1, 2 for hops 0..3: the first level step is
inserted between B1 and B2 (δ₁ alone already exceeds Δ), no step between
B2 and B3 (δ₁+δ₂ = 170 < 2Δ), and another step between B3 and B4
(δ₁+δ₂+δ₃ = 220 > 2Δ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.adaptivity import UncertaintyPlan, adaptive_levels
from repro.core.ploc import MovementGraph, PlocFunction, format_ploc_table

#: Timing values of the paper's example (all in milliseconds).
PAPER_DWELL_TIME = 100.0
PAPER_HOP_DELAYS: Sequence[float] = (120.0, 50.0, 50.0, 20.0)

#: The per-hop levels Figure 8 / Table 4 imply for hops 0..3.
PAPER_LEVELS: Sequence[int] = (0, 1, 1, 2)

#: The values printed in the paper's Table 4.
PAPER_TABLE_4: Dict[int, Dict[str, FrozenSet[str]]] = {
    0: {"a": frozenset("a"), "b": frozenset("b"), "c": frozenset("c"), "d": frozenset("d")},
    1: {
        "a": frozenset({"a", "b", "c"}),
        "b": frozenset({"a", "b", "d"}),
        "c": frozenset({"a", "c", "d"}),
        "d": frozenset({"b", "c", "d"}),
    },
    2: {
        "a": frozenset({"a", "b", "c"}),
        "b": frozenset({"a", "b", "d"}),
        "c": frozenset({"a", "c", "d"}),
        "d": frozenset({"b", "c", "d"}),
    },
    3: {loc: frozenset({"a", "b", "c", "d"}) for loc in "abcd"},
}


@dataclass
class Table4Result:
    """Adaptive levels, cumulative delays and the regenerated ploc table."""

    levels: List[int]
    cumulative_delays: List[float]
    dwell_time: float
    table: Dict[int, Dict[str, FrozenSet[str]]]

    @property
    def matches_paper(self) -> bool:
        """``True`` when the levels and the table match the paper."""
        return (
            list(self.levels[: len(PAPER_LEVELS)]) == list(PAPER_LEVELS)
            and self.table == PAPER_TABLE_4
        )

    def format_text(self) -> str:
        """Render the Figure 8 time line and the Table 4 ploc values."""
        lines = [
            "Delta = {} ms, hop delays = {}".format(
                self.dwell_time, ", ".join(str(d) for d in PAPER_HOP_DELAYS)
            ),
            "cumulative delays: {}".format(
                ", ".join("{:.0f}".format(value) for value in self.cumulative_delays)
            ),
            "levels per hop:     {}".format(", ".join(str(level) for level in self.levels)),
            "",
            format_ploc_table(self.table, locations=["a", "b", "c", "d"]),
        ]
        return "\n".join(lines)


def run(
    dwell_time: float = PAPER_DWELL_TIME,
    hop_delays: Sequence[float] = PAPER_HOP_DELAYS,
    graph: Optional[MovementGraph] = None,
    table_hops: int = 3,
    runtime_factory: object = None,
) -> Table4Result:
    """Regenerate Figure 8's level assignment and Table 4's ploc values.

    *runtime_factory* is accepted for signature uniformity with the
    network-driven experiments and ignored: the table is pure
    computation, identical on every backend.
    """
    graph = graph or MovementGraph.paper_example()
    levels = adaptive_levels(dwell_time, hop_delays)
    plan = UncertaintyPlan(levels=levels, name="adaptive")
    ploc = PlocFunction(graph)
    cumulative = []
    total = 0.0
    for delay in hop_delays:
        total += delay
        cumulative.append(total)
    table: Dict[int, Dict[str, FrozenSet[str]]] = {}
    for hop in range(table_hops + 1):
        table[hop] = {
            location: ploc(location, plan.level_for_hop(hop)) for location in graph.locations()
        }
    return Table4Result(
        levels=levels, cumulative_delays=cumulative, dwell_time=dwell_time, table=table
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    result = run()
    print(result.format_text())
    print("matches paper:", result.matches_paper)
