#!/usr/bin/env python
"""Benchmark regression gate: regenerate benches and diff against BENCH_*.json.

The committed ``BENCH_<name>.json`` files (written by ``run_bench.py``)
record the deterministic cost counters of each benchmark suite —
covering-test invocations, administrative message counts, event-loop
events — plus noisy wall-clock ratios.  This script re-runs the suites,
condenses the fresh numbers the same way, and **fails** when a counter
regressed beyond tolerance:

* *cost counters* (``covering_calls*``, ``merge_evals*``,
  ``admin_messages``, ``settle_events*``, ``cache_misses*``,
  ``constraint_evals*``) must not **increase** by more than
  ``--counter-tolerance`` (default 5%);
* *speedup ratios* (``covering_call_ratio``, ``merge_eval_ratio*``,
  ``constraint_eval_ratio``, ``settle_time_ratio``, ``event_ratio``)
  must not **decrease** below
  ``--ratio-tolerance`` (default 50%) of the committed value — generous
  because wall-clock ratios are machine-bound, while losing an
  optimisation entirely reads as ~1×;
* workload descriptors (``subscriptions``, ``backend`` ...) must match
  exactly — a mismatch means the benchmark itself changed (or runs on a
  different runtime backend) and the BENCH file must be regenerated;
* benchmarks present in the committed file must still exist.

Mapping convention: ``BENCH_<name>.json`` is produced by
``benchmarks/test_bench_<name>.py`` (``BENCH_all.json`` by the whole
directory).  Typical usage::

    python benchmarks/check_bench.py              # check every committed BENCH file
    python benchmarks/check_bench.py scale        # only BENCH_scale.json
    python benchmarks/check_bench.py --keep-json  # leave regenerated files around

A legitimate behaviour change (e.g. a strategy improvement that lowers
admin counts) is recorded by regenerating the file::

    python benchmarks/run_bench.py --name scale benchmarks/test_bench_scale.py
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: extra_info fields where an *increase* is a cost regression.
COUNTER_FIELDS = (
    "covering_calls",
    "merge_evals",
    "admin_messages",
    "settle_events",
    "cache_misses",
    "constraint_evals",
    # Recovery hygiene: replay volume and delivery slop must not creep up.
    "recovery_log_replayed",
    "recovery_store_bytes",
    "deliveries_lost",
    "duplicates_suppressed",
    # Disk store and in-flight retention: write amplification, replayed
    # journal volume and takeover retransmits must not creep up either.
    "disk_bytes_written",
    "disk_records_recovered",
    "disk_snapshots_written",
    "retention_replayed",
    # Vectorised dispatch: counter bumps and mask operations are
    # deterministic costs — creeping back up means the bitset plane (or
    # its shared-predicate skipping) stopped doing its job.
    "count_increments",
    "mask_ops",
)
#: extra_info fields where a *decrease* is a lost speedup.
RATIO_FIELDS = (
    "covering_call_ratio",
    "merge_eval_ratio",
    "merge_eval_ratio_incremental",
    "settle_time_ratio",
    "event_ratio",
    "constraint_eval_ratio",
    "count_increment_ratio",
)
#: extra_info fields describing the workload; any change requires regeneration.
#: ``backend`` names the runtime the numbers were produced on (a string,
#: gated on exact equality like every other workload descriptor).
WORKLOAD_FIELDS = (
    "subscriptions",
    "roam_changes",
    "publishes",
    "delivered",
    "routing_rows",
    "backend",
    # Telemetry event counts are deterministic under the sim backend, so
    # they are gated exactly: a drifting stream means the emission points
    # changed and BENCH_telemetry.json must be regenerated consciously.
    "telemetry_events",
    "span_events",
    "snapshot_events",
)
#: Wall-clock fields (``settle_seconds*``, ``mean_s`` ...) are never gated.


def _classify(field: str) -> str:
    for prefix in WORKLOAD_FIELDS:
        if field == prefix:
            return "workload"
    for prefix in RATIO_FIELDS:
        if field == prefix:
            return "ratio"
    for prefix in COUNTER_FIELDS:
        if field == prefix or field.startswith(prefix + "_"):
            return "counter"
    return "ignore"


def committed_bench_files(names):
    """Paths of the committed BENCH_<name>.json files to check."""
    if names:
        paths = [os.path.join(REPO_ROOT, "BENCH_{}.json".format(name)) for name in names]
        missing = [path for path in paths if not os.path.exists(path)]
        if missing:
            raise SystemExit("no such BENCH file(s): {}".format(", ".join(missing)))
        return paths
    return sorted(
        path
        for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
        # Skip the regenerated copies a previous --keep-json run left.
        if not path.endswith(".new.json")
    )


def selectors_for(name: str):
    """The pytest selectors that produced BENCH_<name>.json."""
    if name == "all":
        return []
    suite = os.path.join(REPO_ROOT, "benchmarks", "test_bench_{}.py".format(name))
    if not os.path.exists(suite):
        raise SystemExit(
            "BENCH_{0}.json has no matching benchmarks/test_bench_{0}.py".format(name)
        )
    return [suite]


def regenerate(name: str, out_dir: str) -> dict:
    """Re-run the suite via run_bench.py and load the fresh condensed JSON."""
    command = [
        sys.executable,
        os.path.join(REPO_ROOT, "benchmarks", "run_bench.py"),
        "--name",
        name,
        "--out-dir",
        out_dir,
        *selectors_for(name),
    ]
    result = subprocess.run(command, cwd=REPO_ROOT)
    if result.returncode != 0:
        raise SystemExit(
            "benchmark suite for {!r} failed (exit {})".format(name, result.returncode)
        )
    with open(os.path.join(out_dir, "BENCH_{}.json".format(name))) as handle:
        return json.load(handle)


def compare(name, old, new, counter_tolerance, ratio_tolerance, exact=False):
    """Diff two condensed BENCH documents; returns a list of failure strings."""
    failures = []
    new_by_name = {record["name"]: record for record in new.get("benchmarks", [])}
    for old_record in old.get("benchmarks", []):
        bench = old_record["name"]
        new_record = new_by_name.get(bench)
        if new_record is None:
            failures.append(
                "{}::{}: benchmark disappeared — regenerate BENCH_{}.json if intended".format(
                    name, bench, name
                )
            )
            continue
        old_info = old_record.get("extra_info", {})
        new_info = new_record.get("extra_info", {})
        for field, old_value in sorted(old_info.items()):
            kind = _classify(field)
            if kind == "ignore":
                continue
            # Workload descriptors are compared exactly whatever their
            # type (``backend`` is a string); the numeric tolerances
            # below only make sense for numbers.
            if kind != "workload" and not isinstance(old_value, (int, float)):
                continue
            new_value = new_info.get(field)
            if new_value is None:
                failures.append(
                    "{}::{}: field {!r} disappeared from extra_info".format(name, bench, field)
                )
                continue
            if kind == "workload":
                if new_value != old_value:
                    failures.append(
                        "{}::{}: workload field {} changed {} -> {}; "
                        "regenerate BENCH_{}.json".format(
                            name, bench, field, old_value, new_value, name
                        )
                    )
            elif kind == "counter":
                if exact:
                    if new_value != old_value:
                        failures.append(
                            "{}::{}: {} changed {} -> {} (--exact requires "
                            "byte-identical counters)".format(
                                name, bench, field, old_value, new_value
                            )
                        )
                    continue
                limit = old_value * (1.0 + counter_tolerance)
                if new_value > limit:
                    failures.append(
                        "{}::{}: {} regressed {} -> {} (> {:+.0%} tolerance)".format(
                            name, bench, field, old_value, new_value, counter_tolerance
                        )
                    )
            elif kind == "ratio":
                floor = old_value * ratio_tolerance
                if new_value < floor:
                    failures.append(
                        "{}::{}: {} collapsed {} -> {} (< {:.0%} of committed)".format(
                            name, bench, field, old_value, new_value, ratio_tolerance
                        )
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="BENCH file names to check (default: every committed BENCH_*.json)",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=0.05,
        help="allowed relative increase of deterministic cost counters (default 0.05)",
    )
    parser.add_argument(
        "--ratio-tolerance",
        type=float,
        default=0.5,
        help="fraction of a committed speedup ratio that must survive (default 0.5)",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="cost counters must match the committed values byte for byte "
        "(the telemetry-off no-perturbation gate); ratios keep their tolerance",
    )
    parser.add_argument(
        "--keep-json",
        action="store_true",
        help="keep the regenerated BENCH files next to the committed ones as BENCH_<name>.new.json",
    )
    args = parser.parse_args(argv)

    paths = committed_bench_files(args.names)
    if not paths:
        print("no committed BENCH_*.json files found; nothing to check")
        return 0

    failures = []
    for path in paths:
        name = os.path.basename(path)[len("BENCH_") : -len(".json")]
        with open(path) as handle:
            old = json.load(handle)
        with tempfile.TemporaryDirectory() as out_dir:
            new = regenerate(name, out_dir)
        if args.keep_json:
            new_path = os.path.join(REPO_ROOT, "BENCH_{}.new.json".format(name))
            with open(new_path, "w") as handle:
                json.dump(new, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote {}".format(new_path))
        problems = compare(
            name, old, new, args.counter_tolerance, args.ratio_tolerance, exact=args.exact
        )
        if problems:
            failures.extend(problems)
        else:
            print("BENCH_{}.json: OK ({} benchmarks)".format(name, len(old.get("benchmarks", []))))

    if failures:
        print("\nbenchmark regressions detected:")
        for failure in failures:
            print("  - " + failure)
        print(
            "\nIf the change is intentional, regenerate with "
            "`python benchmarks/run_bench.py --name <name> benchmarks/test_bench_<name>.py` "
            "and commit the updated BENCH file."
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
