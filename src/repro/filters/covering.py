"""Covering relation between filters.

Covering-based routing (Section 2.2 of the paper) "tests whether a filter
F1 accepts a superset of notifications of a second filter F2, and in this
case replaces all occurrences of F2 assigned to the same link in the
routing table".  This module provides the filter-level covering test on
top of the constraint-level tests defined in
:mod:`repro.filters.constraints`.

Covering for conjunctive filters: ``F1 covers F2`` iff for every attribute
constrained by ``F1`` there is a constraint in ``F2`` on the same
attribute that is covered by ``F1``'s constraint.  Attributes constrained
only by ``F2`` make ``F2`` more selective and therefore do not affect the
result.  The test is sound and complete for this conjunctive model, up to
the completeness of the pairwise constraint tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.filters.constraints import Constraint, Equals, InSet
from repro.filters.filter import Filter, MatchAll, MatchNone


class CoveringStats:
    """Process-wide counter of raw (uncached) covering evaluations.

    Benchmarks and tests read :data:`covering_stats` to verify that the
    covering cache actually eliminates recomputation on the broker hot
    path; the counter only tracks genuine :func:`filter_covers` runs, not
    cache hits.
    """

    __slots__ = ("filter_covers_calls",)

    def __init__(self) -> None:
        self.filter_covers_calls = 0

    def reset(self) -> None:
        self.filter_covers_calls = 0


#: Global counters incremented by :func:`filter_covers`.
covering_stats = CoveringStats()


def constraint_covers(covering: Constraint, covered: Constraint) -> bool:
    """Constraint-level covering: does *covering* accept a superset of *covered*?"""
    return covering.covers(covered)


def filter_covers(covering: Filter, covered: Filter) -> bool:
    """Return ``True`` when *covering* accepts a superset of *covered*.

    ``MatchAll`` covers everything; ``MatchNone`` is covered by everything
    and covers only ``MatchNone``.
    """
    covering_stats.filter_covers_calls += 1
    if isinstance(covered, MatchNone):
        return True
    if isinstance(covering, MatchNone):
        return False
    if isinstance(covering, MatchAll) or covering.is_empty():
        return True
    if isinstance(covered, MatchAll) or covered.is_empty():
        # A constrained filter can never cover the universal filter.
        return False
    for name, covering_constraint in covering.constraint_items():
        covered_constraint = covered.constraint_for(name)
        if covered_constraint is None:
            # ``covered`` places no restriction on this attribute, so it
            # accepts notifications (any value, or absent attribute) that
            # ``covering`` would reject -- unless the covering constraint
            # itself accepts everything.
            if not covering_constraint.matches_absent():
                return False
            continue
        if not covering_constraint.covers(covered_constraint):
            return False
    return True


def filters_identical(left: Filter, right: Filter) -> bool:
    """Exact structural identity of two filters (same canonical key)."""
    return left.key() == right.key() and isinstance(left, MatchNone) == isinstance(
        right, MatchNone
    )


def filters_overlap_hint(left: Filter, right: Filter) -> bool:
    """A cheap, *incomplete* overlap test.

    Returns ``False`` only when the two filters provably cannot both match
    any notification (because they place incompatible equality/set
    constraints on a shared attribute).  Returns ``True`` otherwise.  Used
    by merging heuristics and diagnostics; never relied on for
    correctness.
    """
    if isinstance(left, MatchNone) or isinstance(right, MatchNone):
        return False
    for name, left_constraint in left.constraint_items():
        right_constraint = right.constraint_for(name)
        if right_constraint is None:
            continue
        # Work on the constraint objects directly: ``key()`` rebuilds a
        # sorted tuple (and the ``in`` branches used to build fresh sets)
        # on every call, which made the hint allocate on the hot eq/eq
        # path.  ``Constraint.matches`` reuses each InSet's canonical key
        # dictionary, so every branch below is allocation-free.
        left_is_eq = isinstance(left_constraint, Equals)
        right_is_eq = isinstance(right_constraint, Equals)
        if left_is_eq and right_is_eq:
            if not right_constraint.matches(left_constraint.value):
                return False
        elif left_is_eq and isinstance(right_constraint, InSet):
            if not right_constraint.matches(left_constraint.value):
                return False
        elif isinstance(left_constraint, InSet):
            if right_is_eq:
                if not left_constraint.matches(right_constraint.value):
                    return False
            elif isinstance(right_constraint, InSet):
                small, large = left_constraint, right_constraint
                if len(small._by_key) > len(large._by_key):
                    small, large = large, small
                if not any(key in large._by_key for key in small._by_key):
                    return False
    return True


def find_cover(candidates: Iterable[Filter], target: Filter) -> Optional[Filter]:
    """Return the first filter in *candidates* that covers *target*, if any."""
    for candidate in candidates:
        if filter_covers(candidate, target):
            return candidate
    return None


def covered_by_any(candidates: Iterable[Filter], target: Filter) -> bool:
    """``True`` when some filter in *candidates* covers *target*."""
    return find_cover(candidates, target) is not None


def remove_covered(filters: Sequence[Filter], cover: Filter) -> List[Filter]:
    """Return *filters* with every filter covered by *cover* removed.

    This is the routing-table maintenance primitive of covering-based
    routing: when a new (covering) subscription arrives, existing entries
    it covers on the same link become redundant.
    """
    return [f for f in filters if not filter_covers(cover, f)]


def minimal_cover_set(filters: Sequence[Filter]) -> List[Filter]:
    """Reduce a set of filters to a minimal subset with the same union.

    A filter is dropped when another (distinct) filter in the set covers
    it.  When two filters cover each other (they are equivalent), the one
    appearing first is kept.  The result preserves input order.
    """
    kept: List[Filter] = []
    for index, candidate in enumerate(filters):
        redundant = False
        for other_index, other in enumerate(filters):
            if other_index == index:
                continue
            if filter_covers(other, candidate):
                mutual = filter_covers(candidate, other)
                if mutual and other_index > index:
                    # Equivalent filters: keep the earlier one (candidate).
                    continue
                redundant = True
                break
        if not redundant:
            kept.append(candidate)
    return kept
