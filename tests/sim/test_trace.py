"""Unit tests for trace recording and queries."""

from repro.messages.base import MessageKind
from repro.messages.admin import Subscribe
from repro.messages.notification import Notification
from repro.filters.filter import Filter
from repro.sim.trace import TraceRecorder


def make_notification(seq: int, **attrs) -> Notification:
    attributes = {"index": seq}
    attributes.update(attrs)
    return Notification(attributes, publisher="p", publisher_seq=seq)


class TestRecording:
    def test_link_records_window_queries(self):
        trace = TraceRecorder()
        trace.record_link(1.0, "A", "B", make_notification(1))
        trace.record_link(2.0, "B", "C", Subscribe(Filter({"a": 1}), subject="s"))
        trace.record_link(3.0, "A", "B", make_notification(2))
        assert trace.count_link_messages() == 3
        assert trace.count_link_messages(until=2.0) == 2
        assert trace.count_link_messages(since=2.0) == 2
        assert trace.count_link_messages(kind=MessageKind.NOTIFICATION) == 2
        assert trace.count_link_messages(kind=MessageKind.ADMIN) == 1

    def test_publish_and_delivery_records(self):
        trace = TraceRecorder()
        notification = make_notification(7, topic="news")
        trace.record_publish(0.5, notification)
        trace.record_delivery(1.5, "client", "sub-1", notification, sequence=3)
        assert len(trace.publishes()) == 1
        assert trace.publishes()[0].identity == ("p", 7)
        deliveries = trace.deliveries_for("client")
        assert len(deliveries) == 1
        assert deliveries[0].identity == ("p", 7)
        assert deliveries[0].sequence == 3
        assert dict(deliveries[0].attributes)["topic"] == "news"
        assert trace.deliveries_for("other") == []

    def test_publishes_window(self):
        trace = TraceRecorder()
        trace.record_publish(1.0, make_notification(1))
        trace.record_publish(5.0, make_notification(2))
        assert len(trace.publishes(until=2.0)) == 1

    def test_clear(self):
        trace = TraceRecorder()
        trace.record_publish(1.0, make_notification(1))
        trace.record_link(1.0, "A", "B", make_notification(2))
        trace.clear()
        assert trace.count_link_messages() == 0
        assert trace.publishes() == []
        assert trace.delivery_records == []
