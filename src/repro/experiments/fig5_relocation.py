"""Figure 5 — the relocation walk-through (one and several producers).

Figure 5 of the paper illustrates the relocation protocol on a network of
brokers 1..8 (plus 9 in the multi-producer variant): client C moves from
the border broker 6 to border broker 1; the junction broker 4 detects the
old path, sends the fetch request toward 6, and the buffered notifications
are replayed to the new location while new notifications already travel
the new path.

``run()`` executes exactly that scenario on the simulator (for one or two
producers), records the relocation milestones, and verifies the QoS
guarantees the paper claims for it: completeness, no duplicates,
sender-FIFO order, and garbage collection of the virtual counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.broker.client import Client
from repro.experiments.backends import build_network
from repro.filters.filter import Filter
from repro.metrics.qos import check_completeness, check_fifo, check_no_duplicates
from repro.runtime.factory import RuntimeFactory
from repro.topology.graph import BrokerGraph


def figure5_topology() -> BrokerGraph:
    """The broker graph sketched in Figure 5.

    Brokers 1..8 form a tree; broker 1 is the new border broker, broker 6
    the old one, broker 4 the junction where old and new delivery paths
    meet.  Producer P attaches at broker 3 (and a second producer at
    broker 9 in the multi-producer variant).
    """
    return BrokerGraph.from_edges(
        [
            ("B1", "B2"),
            ("B2", "B3"),
            ("B2", "B7"),
            ("B3", "B4"),
            ("B7", "B8"),
            ("B4", "B5"),
            ("B5", "B6"),
        ]
    )


@dataclass
class Fig5Result:
    """Milestones and QoS outcome of the walk-through."""

    producers: int
    delivered_before_move: int
    buffered_at_old_border: int
    replayed: int
    delivered_total: int
    relocation_latency: Optional[float]
    complete: bool
    no_duplicates: bool
    fifo: bool
    counterpart_garbage_collected: bool

    @property
    def all_guarantees_hold(self) -> bool:
        """Completeness, exactly-once, FIFO and garbage collection all hold."""
        return (
            self.complete
            and self.no_duplicates
            and self.fifo
            and self.counterpart_garbage_collected
        )

    def format_text(self) -> str:
        """Render the milestone summary."""
        lines = [
            "producers:                    {}".format(self.producers),
            "delivered before the move:    {}".format(self.delivered_before_move),
            "buffered at the old border:   {}".format(self.buffered_at_old_border),
            "replayed after relocation:    {}".format(self.replayed),
            "delivered in total:           {}".format(self.delivered_total),
            "relocation latency:           {}".format(
                "{:.3f} s".format(self.relocation_latency)
                if self.relocation_latency is not None
                else "n/a"
            ),
            "completeness:                 {}".format(self.complete),
            "no duplicates:                {}".format(self.no_duplicates),
            "sender FIFO:                  {}".format(self.fifo),
            "counterpart garbage collected:{}".format(self.counterpart_garbage_collected),
        ]
        return "\n".join(lines)


def run(
    producers: int = 1,
    latency: float = 0.05,
    notifications_per_phase: int = 5,
    runtime_factory: Optional[RuntimeFactory] = None,
) -> Fig5Result:
    """Execute the Figure 5 walk-through with one or two producers."""
    if producers not in (1, 2):
        raise ValueError("the Figure 5 scenario supports one or two producers")
    graph = figure5_topology()
    if producers == 2:
        graph.add_edge("B3", "B9")
    network = build_network(
        graph, strategy="covering", latency=latency, runtime_factory=runtime_factory
    )

    producer_clients: List[Client] = []
    attachments = [("P1", "B3")] if producers == 1 else [("P1", "B3"), ("P2", "B9")]
    for client_id, broker_name in attachments:
        producer = network.add_client(client_id, broker_name)
        producer.advertise({"topic": "news"})
        producer_clients.append(producer)

    consumer = network.add_client("C", "B6")
    subscription_id = consumer.subscribe({"topic": "news"})
    network.settle()

    def publish_round(tag: str) -> None:
        for producer in producer_clients:
            for index in range(notifications_per_phase):
                producer.publish({"topic": "news", "phase": tag, "index": index})

    # Phase 1: connected at the old location.
    publish_round("connected-old")
    network.settle()
    delivered_before_move = len(consumer.received)

    # Phase 2: the client is disconnected; the virtual counterpart buffers.
    consumer.detach()
    publish_round("disconnected")
    network.settle()
    counterpart = network.broker("B6").counterpart_for("C", subscription_id)
    buffered = counterpart.buffered_count() if counterpart is not None else 0

    # Phase 3: reconnect at the new location (steps 1-6 of Figure 5).
    consumer.move_to(network.broker("B1"))
    publish_round("connected-new")
    network.settle()

    relocations = network.broker("B1").relocation_records
    relocation = relocations[-1] if relocations else None

    filter_ = Filter({"topic": "news"})
    completeness = check_completeness(network.trace, "C", filter_)
    duplicates = check_no_duplicates(network.trace, "C")
    fifo = check_fifo(network.trace, "C")

    counterparts_collected = not network.broker("B6").has_counterparts()
    network.close()
    return Fig5Result(
        producers=producers,
        delivered_before_move=delivered_before_move,
        buffered_at_old_border=buffered,
        replayed=relocation.replayed if relocation is not None else 0,
        delivered_total=len(consumer.received),
        relocation_latency=relocation.latency if relocation is not None else None,
        complete=completeness.complete,
        no_duplicates=duplicates.clean,
        fifo=fifo.ordered,
        counterpart_garbage_collected=counterparts_collected,
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    for count in (1, 2):
        result = run(producers=count)
        print(result.format_text())
        print()
