"""Integration tests of basic content-based pub/sub over the broker network."""

import pytest

from repro.broker.network import PubSubNetwork
from repro.filters.filter import Filter
from repro.metrics.counters import MessageCounter
from repro.metrics.qos import check_completeness, check_fifo, check_no_duplicates
from repro.topology.builders import balanced_tree_topology, line_topology, star_topology

STRATEGIES = ["simple", "identity", "covering", "merging", "flooding"]


def build_line(strategy):
    network = PubSubNetwork(line_topology(4), strategy=strategy, latency=0.05)
    producer = network.add_client("producer", "B4")
    producer.advertise({"topic": "news"})
    consumer = network.add_client("consumer", "B1")
    return network, producer, consumer


class TestDeliveryAcrossStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matching_notification_is_delivered(self, strategy):
        network, producer, consumer = build_line(strategy)
        consumer.subscribe({"topic": "news"})
        network.settle()
        producer.publish({"topic": "news", "headline": "hello"})
        network.settle()
        assert len(consumer.received) == 1
        assert consumer.received[0].notification.get("headline") == "hello"

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_non_matching_notification_is_filtered(self, strategy):
        network, producer, consumer = build_line(strategy)
        consumer.subscribe({"topic": "news"})
        network.settle()
        producer.publish({"topic": "sports"})
        network.settle()
        assert consumer.received == []

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_fifo_and_exactly_once(self, strategy):
        network, producer, consumer = build_line(strategy)
        consumer.subscribe({"topic": "news"})
        network.settle()
        for index in range(10):
            producer.publish({"topic": "news", "index": index})
        network.settle()
        assert len(consumer.received) == 10
        assert check_fifo(network.trace, "consumer").ordered
        assert check_no_duplicates(network.trace, "consumer").clean
        assert check_completeness(network.trace, "consumer", Filter({"topic": "news"})).complete

    @pytest.mark.parametrize("strategy", ["simple", "covering", "merging"])
    def test_content_based_selectivity(self, strategy):
        network, producer, consumer = build_line(strategy)
        consumer.subscribe({"topic": "news", "priority": (">", 5)})
        network.settle()
        for priority in range(10):
            producer.publish({"topic": "news", "priority": priority})
        network.settle()
        priorities = sorted(r.notification.get("priority") for r in consumer.received)
        assert priorities == [6, 7, 8, 9]


class TestMultipleClients:
    def test_independent_subscriptions(self):
        network = PubSubNetwork(star_topology(3, hub="hub"), strategy="covering", latency=0.01)
        producer = network.add_client("producer", "B1")
        producer.advertise({"type": "quote"})
        alice = network.add_client("alice", "B2")
        bob = network.add_client("bob", "B3")
        alice.subscribe({"type": "quote", "symbol": "REBECA"})
        bob.subscribe({"type": "quote", "symbol": "SIENA"})
        network.settle()
        producer.publish({"type": "quote", "symbol": "REBECA", "price": 10})
        producer.publish({"type": "quote", "symbol": "SIENA", "price": 20})
        producer.publish({"type": "quote", "symbol": "OTHER", "price": 30})
        network.settle()
        assert [r.notification.get("symbol") for r in alice.received] == ["REBECA"]
        assert [r.notification.get("symbol") for r in bob.received] == ["SIENA"]

    def test_same_broker_producer_and_consumer(self):
        network = PubSubNetwork(line_topology(2), strategy="covering", latency=0.01)
        producer = network.add_client("producer", "B1")
        producer.advertise({"a": 1})
        consumer = network.add_client("consumer", "B1")
        consumer.subscribe({"a": 1})
        network.settle()
        producer.publish({"a": 1})
        network.settle()
        assert len(consumer.received) == 1

    def test_publisher_does_not_receive_own_notification_unless_subscribed(self):
        network = PubSubNetwork(line_topology(2), strategy="covering", latency=0.01)
        peer = network.add_client("peer", "B1")
        peer.advertise({"a": 1})
        network.settle()
        peer.publish({"a": 1})
        network.settle()
        assert peer.received == []

    def test_overlapping_subscriptions_deliver_once_per_subscription(self):
        network = PubSubNetwork(line_topology(3), strategy="covering", latency=0.01)
        producer = network.add_client("producer", "B3")
        producer.advertise({"topic": "news"})
        consumer = network.add_client("consumer", "B1")
        wide = consumer.subscribe({"topic": "news"})
        narrow = consumer.subscribe({"topic": "news", "priority": (">", 5)})
        network.settle()
        producer.publish({"topic": "news", "priority": 9})
        network.settle()
        subscriptions = sorted(r.subscription_id for r in consumer.received)
        assert subscriptions == sorted([wide, narrow])


class TestUnsubscribe:
    @pytest.mark.parametrize("strategy", ["simple", "covering"])
    def test_unsubscribe_stops_delivery(self, strategy):
        network, producer, consumer = build_line(strategy)
        subscription = consumer.subscribe({"topic": "news"})
        network.settle()
        producer.publish({"topic": "news", "index": 1})
        network.settle()
        consumer.unsubscribe(subscription)
        network.settle()
        producer.publish({"topic": "news", "index": 2})
        network.settle()
        assert len(consumer.received) == 1

    def test_unsubscribe_cleans_remote_routing_tables(self):
        network, producer, consumer = build_line("covering")
        subscription = consumer.subscribe({"topic": "news"})
        network.settle()
        sizes_before = network.routing_table_sizes()
        consumer.unsubscribe(subscription)
        network.settle()
        sizes_after = network.routing_table_sizes()
        # The consumer's filter must have disappeared from the upstream brokers.
        assert sizes_after["B2"] < sizes_before["B2"]
        assert sizes_after["B3"] < sizes_before["B3"]
        assert sizes_after["B4"] < sizes_before["B4"]


class TestEfficiencyContrast:
    def test_flooding_sends_more_notifications_than_covering(self):
        totals = {}
        for strategy in ("flooding", "covering"):
            network = PubSubNetwork(
                balanced_tree_topology(depth=2, fanout=2), strategy=strategy, latency=0.01
            )
            leaves = balanced_tree_topology(depth=2, fanout=2).leaves()
            producer = network.add_client("producer", leaves[0])
            producer.advertise({"topic": "news"})
            consumer = network.add_client("consumer", leaves[1])
            consumer.subscribe({"topic": "news", "priority": 1})
            network.settle()
            for index in range(20):
                producer.publish({"topic": "news", "priority": index % 3})
            network.settle()
            counter = MessageCounter(network.trace)
            totals[strategy] = counter.breakdown().notifications
        assert totals["flooding"] > totals["covering"]
