"""Wire codec for filters and constraints.

Filters cross real links inside administrative and mobility messages, so
the asyncio backend (:mod:`repro.runtime.aio`) needs a byte-level
representation.  The codec serialises a constraint as its canonical
:meth:`~repro.filters.constraints.Constraint.key` — operator mnemonic
plus type-tagged operands — which is exactly the identity filter
equality, covering and routing-table keys are built on.  Round-tripping
therefore preserves ``Filter.key()`` bit for bit::

    filter_from_wire(filter_to_wire(f)).key() == f.key()

The payloads are plain JSON values (dicts, lists, strings, numbers,
booleans): tuples in the canonical keys become lists on the wire and are
rebuilt on decode.  Numbers round-trip through the ``number`` type tag
(``canonical_key`` floats them, so ``Equals(3)`` and ``Equals(3.0)``
share one wire form — as they share one key).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.filters.constraints import (
    AnyValue,
    Between,
    Constraint,
    Equals,
    Exists,
    GreaterEqual,
    GreaterThan,
    InSet,
    LessEqual,
    LessThan,
    NotEquals,
    Prefix,
)
from repro.filters.filter import Filter, MatchAll, MatchNone


class WireDecodeError(ValueError):
    """Raised for malformed filter or constraint payloads."""


def _value_to_wire(canonical: Sequence[Any]) -> List[Any]:
    """A canonical ``(tag, value)`` key as a JSON-friendly list."""
    return [canonical[0], canonical[1]]


def _value_from_wire(payload: Sequence[Any]) -> Any:
    """Invert :func:`_value_to_wire` back to a plain attribute value."""
    if not isinstance(payload, (list, tuple)) or len(payload) != 2:
        raise WireDecodeError("malformed value key: {!r}".format(payload))
    tag, value = payload
    if tag == "number":
        return float(value)
    if tag in ("string", "boolean"):
        return value
    raise WireDecodeError("unknown value type tag: {!r}".format(tag))


def constraint_to_wire(constraint: Constraint) -> List[Any]:
    """The constraint's canonical key as a JSON-friendly ``[op, ...]`` list."""
    key = constraint.key()
    op = key[0]
    if op in ("any", "exists"):
        return [op]
    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        return [op, _value_to_wire(key[1])]
    if op == "between":
        return [op, _value_to_wire(key[1]), _value_to_wire(key[2]), key[3], key[4]]
    if op == "in":
        return [op, [_value_to_wire(value_key) for value_key in key[1]]]
    if op == "prefix":
        return [op, key[1]]
    raise WireDecodeError("constraint {!r} has no wire form".format(constraint))


_SCALAR_OPS = {
    "eq": Equals,
    "ne": NotEquals,
    "lt": LessThan,
    "le": LessEqual,
    "gt": GreaterThan,
    "ge": GreaterEqual,
}


def constraint_from_wire(payload: Sequence[Any]) -> Constraint:
    """Rebuild a constraint from its wire form (inverse of ``constraint_to_wire``)."""
    if not isinstance(payload, (list, tuple)) or not payload:
        raise WireDecodeError("malformed constraint payload: {!r}".format(payload))
    op = payload[0]
    if op == "any":
        return AnyValue()
    if op == "exists":
        return Exists()
    ctor = _SCALAR_OPS.get(op)
    if ctor is not None:
        return ctor(_value_from_wire(payload[1]))
    if op == "between":
        return Between(
            _value_from_wire(payload[1]),
            _value_from_wire(payload[2]),
            bool(payload[3]),
            bool(payload[4]),
        )
    if op == "in":
        return InSet([_value_from_wire(value_key) for value_key in payload[1]])
    if op == "prefix":
        return Prefix(payload[1])
    raise WireDecodeError("unknown constraint operator: {!r}".format(op))


def filter_to_wire(filter_: Filter) -> Dict[str, Any]:
    """A JSON-friendly representation of *filter_* built on canonical keys."""
    if isinstance(filter_, MatchNone):
        return {"kind": "none"}
    if isinstance(filter_, MatchAll):
        return {"kind": "all"}
    return {
        "kind": "filter",
        "constraints": [
            [name, constraint_to_wire(constraint)] for name, constraint in filter_
        ],
    }


def filter_from_wire(payload: Dict[str, Any]) -> Filter:
    """Rebuild a filter from its wire form (inverse of :func:`filter_to_wire`)."""
    kind = payload.get("kind")
    if kind == "none":
        return MatchNone()
    if kind == "all":
        return MatchAll()
    if kind != "filter":
        raise WireDecodeError("unknown filter kind: {!r}".format(kind))
    constraints: Dict[str, Constraint] = {}
    for item in payload.get("constraints", ()):
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise WireDecodeError("malformed filter constraint entry: {!r}".format(item))
        name, spec = item
        constraints[name] = constraint_from_wire(spec)
    return Filter(constraints)
