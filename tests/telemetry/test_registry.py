"""Per-broker metric registries, the stats facades, and network scoping."""

from repro.broker.base import BrokerConfig
from repro.broker.network import PubSubNetwork
from repro.dispatch.stats import dispatch_stats
from repro.filters.merging import merge_stats
from repro.filters.stats import matching_stats
from repro.metrics.counters import data_plane_breakdown, reset_data_plane_stats
from repro.telemetry import RingBufferSink, TelemetryConfig
from repro.telemetry.registry import Histogram, MetricRegistry
from repro.topology.builders import line_topology


def _run_workload(network, publishes=5, tag="news"):
    producer = network.add_client("P", "B3")
    producer.advertise({"topic": tag})
    consumer = network.add_client("C", "B1")
    # Two attributes so matching exercises real constraint evaluations
    # (a single-constraint filter takes the arity-1 fast path).
    consumer.subscribe({"topic": tag, "grade": "a"})
    network.settle()
    for index in range(publishes):
        producer.publish({"topic": tag, "grade": "a", "seq": index})
    network.settle()
    return consumer


class TestHistogram:
    def test_buckets_and_summary_fields(self):
        histogram = Histogram(bounds=(1, 5, 10))
        for value in (0, 1, 2, 7, 50):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["bucket_counts"] == [2, 1, 1, 1]
        assert snapshot["count"] == 5
        assert snapshot["sum"] == 60
        assert snapshot["max"] == 50
        histogram.reset()
        assert histogram.count == 0
        assert histogram.bucket_counts == [0, 0, 0, 0]


class TestMetricRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricRegistry("B")
        try:
            registry.inc("things")
            registry.inc("things", 2)
            registry.set_gauge("depth", 3)
            registry.set_gauge("depth", 1)
            registry.observe("fanout", 4)
            assert registry.counters["things"] == 3
            assert registry.gauge_snapshot() == {"depth": {"last": 1, "high": 3}}
            assert registry.histogram_snapshot()["fanout"]["count"] == 1
        finally:
            registry.close()

    def test_activate_restore_nesting(self):
        outer = MetricRegistry("outer")
        inner = MetricRegistry("inner")
        try:
            saved_outer = outer.activate()
            matching_stats.current.constraint_evals += 1
            saved_inner = inner.activate()
            matching_stats.current.constraint_evals += 10
            MetricRegistry.restore(saved_inner)
            matching_stats.current.constraint_evals += 1
            MetricRegistry.restore(saved_outer)
            assert outer.matching.constraint_evals == 2
            assert inner.matching.constraint_evals == 10
        finally:
            outer.close()
            inner.close()

    def test_queue_depth_probe_feeds_gauge_and_histogram(self):
        registry = MetricRegistry("B")
        try:
            probe = registry.queue_depth_probe("B->C")
            probe(2)
            probe(5)
            probe(1)
            assert registry.gauge_snapshot()["queue_depth:B->C"] == {
                "last": 1,
                "high": 5,
            }
            assert registry.histogram_snapshot()["link_queue_depth"]["count"] == 3
        finally:
            registry.close()


class TestPerNetworkScoping:
    def test_two_concurrent_networks_do_not_bleed(self):
        """Regression: two live PubSubNetworks used to share one process-
        global stats object, so the second network's matching work
        polluted the first's breakdown.  The per-broker registries make
        ``network.data_plane_breakdown()`` attributable per network."""
        reset_data_plane_stats()
        network_a = PubSubNetwork(line_topology(3), strategy="covering", latency=0.01)
        network_b = PubSubNetwork(line_topology(3), strategy="covering", latency=0.01)

        _run_workload(network_a, publishes=4)
        breakdown_a = network_a.data_plane_breakdown()
        assert breakdown_a["dispatch_matches"] > 0

        # Work on network B must leave A's scoped numbers untouched.
        _run_workload(network_b, publishes=9)
        assert network_a.data_plane_breakdown() == breakdown_a
        breakdown_b = network_b.data_plane_breakdown()
        assert breakdown_b["dispatch_matches"] > breakdown_a["dispatch_matches"]

        # The process-global facade still sums over everything.
        global_breakdown = data_plane_breakdown()
        for key in ("constraint_evals", "filter_matches", "dispatch_matches"):
            assert global_breakdown[key] == breakdown_a[key] + breakdown_b[key]

    def test_broker_counter_snapshot_reconciles_with_breakdown(self):
        reset_data_plane_stats()
        network = PubSubNetwork(line_topology(3), strategy="covering", latency=0.01)
        consumer = _run_workload(network, publishes=6)
        assert len(consumer.received) == 6

        scoped = network.data_plane_breakdown()
        assert scoped["dispatch_matches"] > 0
        snapshots = [broker.metrics.counter_snapshot() for broker in network.brokers.values()]
        for key in ("constraint_evals", "filter_matches", "dispatch_matches"):
            assert scoped[key] == sum(snapshot[key] for snapshot in snapshots)
        delivered = sum(snapshot["notifications_delivered"] for snapshot in snapshots)
        assert delivered == 6


class TestCountIncrementHistogram:
    def test_per_notification_counting_cost_is_observed(self):
        """With telemetry on, every handled notification records its
        counter-bump cost in the ``dispatch_count_increments`` histogram
        (``dispatch_fanout``-style): positive sums under the counting
        matcher, all-zero observations under the bitset matcher — with
        the same observation count, since the modes handle the same
        notifications."""

        def run(vectorised):
            network = PubSubNetwork(
                line_topology(3),
                strategy="covering",
                latency=0.01,
                config=BrokerConfig(vectorised_dispatch=vectorised),
                telemetry=TelemetryConfig(sink_factory=RingBufferSink),
            )
            _run_workload(network, publishes=5)
            histograms = {}
            for broker in network.brokers.values():
                snapshot = broker.metrics.histogram_snapshot()
                if "dispatch_count_increments" in snapshot:
                    histograms[broker.name] = snapshot["dispatch_count_increments"]
            network.close()
            return histograms

        counting = run(vectorised=False)
        vectorised = run(vectorised=True)
        assert counting and vectorised
        assert sum(h["sum"] for h in counting.values()) > 0
        assert sum(h["sum"] for h in vectorised.values()) == 0
        assert sum(h["count"] for h in counting.values()) == sum(
            h["count"] for h in vectorised.values()
        )


class TestResetUnification:
    def test_reset_data_plane_stats_resets_merge_stats_too(self):
        """Pin for the historical bug: ``reset_data_plane_stats`` skipped
        the merging family, leaking ``try_merge_calls`` across benchmark
        prologues."""
        merge_stats.current.try_merge_calls += 3
        matching_stats.current.constraint_evals += 1
        dispatch_stats.current.matches += 1
        assert merge_stats.try_merge_calls >= 3
        reset_data_plane_stats()
        assert merge_stats.try_merge_calls == 0
        assert matching_stats.constraint_evals == 0
        assert dispatch_stats.matches == 0

    def test_facade_snapshot_sums_base_and_registries(self):
        reset_data_plane_stats()
        registry = MetricRegistry("X")
        try:
            matching_stats.current.constraint_evals += 2  # unattributed (base)
            saved = registry.activate()
            matching_stats.current.constraint_evals += 5  # attributed
            MetricRegistry.restore(saved)
            assert matching_stats.base.constraint_evals == 2
            assert registry.matching.constraint_evals == 5
            assert matching_stats.constraint_evals == 7
            assert matching_stats.snapshot()["constraint_evals"] == 7
        finally:
            registry.close()
        reset_data_plane_stats()
