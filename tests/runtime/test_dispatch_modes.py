"""Dispatch-mode trace identity on every runtime backend.

The vectorised data plane (bitset matching, shared-predicate skipping,
cross-notification batching) must be invisible in every observable:
on each backend — sim, virtual-time asyncio over memory pipes, and over
loopback TCP — the vectorised, counting and scan modes must produce
**byte-identical traces**, timestamps included: the same deliveries in
the same order, the same link traversals (admin messages included), the
same drops and publishes.  The workload mixes identical-attribute
bursts (exercising the batched-run reuse on the sim backend) with
varied publishes and subscription churn (exercising the dirty-bucket
recompiles) so every stage of the vectorised path is on trial.
"""

import pytest

from repro.broker.base import BrokerConfig
from repro.broker.network import PubSubNetwork
from repro.runtime.factory import BACKENDS, make_runtime
from repro.sim.rng import DeterministicRandom
from repro.topology.builders import balanced_tree_topology

from tests.runtime.test_backend_parity import _trace_fingerprint

MODE_CONFIGS = {
    "vectorised": {"indexed_dispatch": True, "vectorised_dispatch": True},
    "counting": {"indexed_dispatch": True, "vectorised_dispatch": False},
    "scan": {"indexed_dispatch": False},
}


def _run_workload(backend, mode):
    network = PubSubNetwork(
        balanced_tree_topology(depth=2, fanout=2),
        strategy="covering",
        runtime=make_runtime(backend, latency=0.01),
        config=BrokerConfig(**MODE_CONFIGS[mode]),
    )
    leaves = network.graph.leaves()
    rng = DeterministicRandom(29)
    producer = network.add_client("producer", leaves[0])
    producer.advertise({"service": "parking"})
    clients = []
    subscriptions = []
    # Enough sharers of the ``service == parking`` predicate to form a
    # hot set, with overlapping secondary constraints.
    for index in range(12):
        client = network.add_client("c{}".format(index), leaves[index % len(leaves)])
        subscriptions.append(
            (client, client.subscribe({"service": "parking", "floor": ("<", 1 + index % 5)}))
        )
        clients.append(client)
    network.settle()

    for round_ in range(6):
        # An identical-attribute burst at one instant: on the sim backend
        # these share one link flush and go through receive_batch.
        for _ in range(3):
            producer.publish({"service": "parking", "floor": round_ % 5})
        # Plus varied publishes that defeat the signature cache.
        producer.publish(
            {"service": "parking", "floor": rng.randint(0, 6), "seq": rng.randint(0, 999)}
        )
        network.settle()
        # Churn between bursts: the vectorised matcher must recompile
        # exactly the dirtied predicate buckets, with no observable
        # difference from the per-message modes.
        client, subscription_id = subscriptions[round_ % len(subscriptions)]
        client.unsubscribe(subscription_id)
        subscriptions[round_ % len(subscriptions)] = (
            client,
            client.subscribe({"service": "parking", "floor": ("<", 2 + round_ % 4)}),
        )
        network.settle()

    fingerprint = _trace_fingerprint(network.trace)
    received = {c.client_id: c.received_identities() for c in clients}
    tables = network.routing_table_sizes()
    network.close()
    return fingerprint, received, tables


@pytest.mark.parametrize("backend", BACKENDS)
def test_three_mode_trace_identity(backend):
    """Vectorised, counting and scan leave byte-identical traces."""
    try:
        vectorised = _run_workload(backend, "vectorised")
    except OSError as error:  # pragma: no cover - sandboxed environments
        pytest.skip("loopback sockets unavailable: {}".format(error))
    for mode in ("counting", "scan"):
        other = _run_workload(backend, mode)
        assert other[0]["deliveries"] == vectorised[0]["deliveries"], (backend, mode)
        assert other[0]["links"] == vectorised[0]["links"], (backend, mode)
        assert other[0]["drops"] == vectorised[0]["drops"], (backend, mode)
        assert other[0]["publishes"] == vectorised[0]["publishes"], (backend, mode)
        assert other[1] == vectorised[1], (backend, mode)
        assert other[2] == vectorised[2], (backend, mode)
