"""Content-based routing.

Every broker maintains a routing table whose entries are pairs ``(F, L)``
of a filter and the link (or local client) it was received from
(Section 2.2 of the paper).  The table answers two questions:

* for a notification: which destinations have registered a matching
  filter (notification forwarding);
* for the set of active subscriptions: which filters should be forwarded
  to each neighbour broker (subscription forwarding).

The second question is what the different *routing strategies* answer
differently:

* **flooding** — notifications are forwarded everywhere, subscriptions are
  never forwarded;
* **simple** — every subscription is forwarded unchanged;
* **identity** — duplicate (identical) filters are forwarded only once;
* **covering** — a filter is not forwarded when an already forwarded
  filter covers it, and newly forwarded covers replace the filters they
  cover;
* **merging** — in addition to covering, sets of filters are merged into
  covering filters before forwarding.
"""

from repro.routing.table import RoutingTable, RoutingEntry
from repro.routing.strategies import (
    CoveringStrategy,
    FloodingStrategy,
    IdentityStrategy,
    MergingStrategy,
    RoutingStrategy,
    SimpleStrategy,
    make_strategy,
)

__all__ = [
    "RoutingTable",
    "RoutingEntry",
    "RoutingStrategy",
    "FloodingStrategy",
    "SimpleStrategy",
    "IdentityStrategy",
    "CoveringStrategy",
    "MergingStrategy",
    "make_strategy",
]
