"""Heartbeat/lease failure detection and the in-flight retention window.

Two halves of "make recovery real": crashes are *observed* (a missed
lease, not a scripted takeover call), and the notifications that were in
flight into the crashed broker are *retained* by the upstream neighbour
and replayed to the takeover broker — so a durable subscriber loses
nothing even when its border broker dies mid-delivery.  The
kill-at-any-point sweep at the bottom is the acceptance bar: crash the
border broker between any two publishes and the durable subscriber still
ends with the complete, duplicate-free, gap-free history.
"""

import pytest

from repro.broker.base import BrokerConfig
from repro.broker.client import Client
from repro.broker.network import PubSubNetwork
from repro.experiments.backends import build_network
from repro.messages.notification import Notification
from repro.metrics.qos import check_completeness, check_fifo, check_no_duplicates
from repro.filters.filter import Filter
from repro.runtime.factory import runtime_factory
from repro.topology.builders import line_topology


def _network(brokers=3, retention=None, factory=None):
    network = build_network(
        line_topology(brokers),
        strategy="covering",
        latency=0.05,
        runtime_factory=factory,
        config=BrokerConfig(forward_retention=retention),
    )
    network.enable_recovery()
    producer = network.add_client("producer", "B{}".format(brokers))
    producer.advertise({"topic": "news"})
    consumer = network.add_client("consumer", "B1")
    consumer.subscribe({"topic": "news"}, subscription_id="s1", durable=True)
    network.settle()
    return network, producer, consumer


# ----------------------------------------------------------------------
# Heartbeats and lease-based detection
# ----------------------------------------------------------------------
class TestFailureDetection:
    def test_heartbeats_update_last_heard(self):
        network, _, _ = _network()
        network.enable_failure_detection(
            heartbeat_interval=0.5, lease_timeout=1.2, until=network.now + 1.0
        )
        network.settle()
        b2 = network.broker("B2")
        assert b2.counters["heartbeats_sent"] > 0
        assert set(b2.heartbeat_last_heard) == {"B1", "B3"}
        # Beacons arrive one link latency after the tick that sent them.
        assert b2.heartbeat_last_heard["B1"] > 0

    def test_detector_rejects_degenerate_parameters(self):
        network, _, _ = _network()
        with pytest.raises(ValueError):
            network.enable_failure_detection(0.0, 1.0, until=network.now + 1.0)
        with pytest.raises(ValueError):
            network.enable_failure_detection(1.0, 0.5, until=network.now + 1.0)
        network.close()

    def test_missed_lease_is_observed_and_orphans_adopted(self):
        network, producer, consumer = _network(retention=8)
        detector = network.enable_failure_detection(
            heartbeat_interval=0.5, lease_timeout=1.2, until=network.now + 2.0
        )
        crash_time = network.now
        network.crash_broker("B1")  # nobody scripts a takeover
        network.settle()
        assert detector.suspected() == ["B1"]
        assert len(detector.detections) == 1
        time, suspect, observer = detector.detections[0]
        assert (suspect, observer) == ("B1", "B2")
        # Detection fires at the first tick past the lease: silent since
        # the detector started, so crash_time + 1.5 with these knobs.
        assert time == pytest.approx(crash_time + 1.5)
        # The orphaned durable subscriber now lives on the observer.
        assert consumer.border_broker is network.broker("B2")
        producer.publish({"topic": "news", "n": 1})
        network.settle()
        assert len(consumer.received) == 1
        network.close()

    def test_healthy_brokers_are_never_suspected(self):
        network, _, _ = _network()
        detector = network.enable_failure_detection(
            heartbeat_interval=0.5, lease_timeout=1.2, until=network.now + 3.0
        )
        network.settle()
        assert detector.suspected() == []
        assert detector.detections == []
        network.close()

    def test_restart_clears_suspicion(self):
        network, _, _ = _network(retention=8)
        detector = network.enable_failure_detection(
            heartbeat_interval=0.5, lease_timeout=1.2, until=network.now + 2.0
        )
        network.crash_broker("B1")
        network.settle()
        assert detector.suspected() == ["B1"]
        network.restart_broker("B1")
        assert detector.suspected() == []
        network.close()

    def test_detection_time_is_backend_identical(self):
        results = []
        for factory in (None, runtime_factory("aio-memory")):
            network, _, _ = _network(retention=8, factory=factory)
            detector = network.enable_failure_detection(
                heartbeat_interval=0.5, lease_timeout=1.2, until=network.now + 2.0
            )
            network.crash_broker("B1")
            network.settle()
            results.append(list(detector.detections))
            network.close()
        assert results[0] == results[1]


# ----------------------------------------------------------------------
# In-flight retention: wrap, ack, prune, replay
# ----------------------------------------------------------------------
class TestForwardRetention:
    def test_forwards_are_acked_and_pruned_in_steady_state(self):
        network, producer, consumer = _network(retention=8)
        producer.publish({"topic": "news", "n": 1})
        network.settle()
        b2 = network.broker("B2")
        assert b2.counters["forwards_retained"] > 0
        assert b2.counters["forwards_acked"] == b2.counters["forwards_retained"]
        assert b2.retained_forwards("B1") == []
        assert len(consumer.received) == 1
        network.close()

    def test_unacked_forwards_stay_retained_when_receiver_is_down(self):
        network, producer, consumer = _network(retention=8)
        network.crash_broker("B1")
        for index in range(3):
            producer.publish({"topic": "news", "n": index})
        network.settle()
        b2 = network.broker("B2")
        window = b2.retained_forwards("B1")
        assert [seq for seq, _ in window] == [1, 2, 3]
        assert b2.counters["forwards_acked"] == 0
        network.close()

    def test_retention_window_is_bounded(self):
        network, producer, _ = _network(retention=2)
        network.crash_broker("B1")
        for index in range(5):
            producer.publish({"topic": "news", "n": index})
        network.settle()
        b2 = network.broker("B2")
        assert [seq for seq, _ in b2.retained_forwards("B1")] == [4, 5]
        assert b2.counters["retention_evicted"] == 3
        network.close()

    def test_takeover_replays_retained_window_without_duplicates(self):
        network, producer, consumer = _network(retention=8)
        producer.publish({"topic": "news", "n": 0})
        network.settle()
        network.crash_broker("B1")
        for index in range(1, 4):
            producer.publish({"topic": "news", "n": index})
        network.settle()
        assert len(consumer.received) == 1  # only the pre-crash one
        adopted = network.failover_orphans("B1", adopter="B2")
        assert adopted == 1
        b2 = network.broker("B2")
        assert b2.counters["retention_replayed"] == 3
        assert b2.relocation_records[-1].replayed == 3
        # Zero loss, exactly once, sequence numbering intact.
        assert [record.sequence for record in consumer.received] == [1, 2, 3, 4]
        assert consumer.unfilled_gap_ranges() == []
        assert check_no_duplicates(network.trace, "consumer").clean
        network.close()

    def test_replay_respects_the_subscription_filter(self):
        network, producer, consumer = _network(retention=8)
        producer.advertise({"topic": "weather"}, advertisement_id="weather")
        other = network.add_client("other", "B1")
        other.subscribe({"topic": "weather"}, subscription_id="w1", durable=True)
        network.settle()
        network.crash_broker("B1")
        producer.publish({"topic": "news", "n": 1})
        producer.publish({"topic": "weather", "n": 2})
        network.settle()
        network.failover_orphans("B1", adopter="B2")
        assert [r.notification.attributes["topic"] for r in consumer.received] == ["news"]
        assert [r.notification.attributes["topic"] for r in other.received] == ["weather"]
        network.close()


# ----------------------------------------------------------------------
# Per-subscription gap ranges on the client
# ----------------------------------------------------------------------
class TestGapRanges:
    def test_gap_ranges_record_which_sequences_were_lost(self):
        client = Client("c")
        client.subscribe({"topic": "news"}, subscription_id="s1", durable=True)
        note = Notification({"topic": "news"}, publisher="p", publisher_seq=1)
        client.deliver("s1", note, 1)
        client.deliver("s1", note, 5)
        assert client.counters["gaps_detected"] == 1
        assert client.unfilled_gap_ranges("s1") == [(2, 4)]
        assert client.unfilled_gap_ranges() == [(2, 4)]

    def test_redelivery_fills_and_splits_gap_ranges(self):
        client = Client("c")
        client.subscribe({"topic": "news"}, subscription_id="s1", durable=True)
        note = Notification({"topic": "news"}, publisher="p", publisher_seq=1)
        client.deliver("s1", note, 1)
        client.deliver("s1", note, 5)
        client.deliver("s1", note, 3)  # mid-gap redelivery splits the range
        assert client.unfilled_gap_ranges("s1") == [(2, 2), (4, 4)]
        client.deliver("s1", note, 2)
        client.deliver("s1", note, 4)
        assert client.unfilled_gap_ranges("s1") == []
        # Filled redeliveries are still suppressed as duplicates.
        assert client.counters["duplicates_suppressed"] == 3
        assert len(client.received) == 2

    def test_gap_ranges_are_per_subscription(self):
        client = Client("c")
        client.subscribe({"topic": "a"}, subscription_id="s1", durable=True)
        client.subscribe({"topic": "b"}, subscription_id="s2", durable=True)
        note = Notification({"topic": "a"}, publisher="p", publisher_seq=1)
        client.deliver("s1", note, 2)
        client.deliver("s2", note, 4)
        assert client.unfilled_gap_ranges("s1") == [(1, 1)]
        assert client.unfilled_gap_ranges("s2") == [(1, 3)]
        assert client.unfilled_gap_ranges() == [(1, 1), (1, 3)]


# ----------------------------------------------------------------------
# Kill-at-any-point: zero durable loss with detection + retention on
# ----------------------------------------------------------------------
TOTAL_PUBLISHES = 6


@pytest.mark.parametrize("crash_after", range(TOTAL_PUBLISHES + 1))
def test_crash_between_any_two_publishes_loses_nothing(crash_after):
    """Crash the border broker at every point of a publish stream.

    ``crash_after`` publishes land normally, the crash happens, the rest
    are published while the broker is dark — some die inside it mid
    flight — and the lease detector adopts the orphan.  Whatever the
    crash point, the durable subscriber must end with the full stream:
    complete, exactly once, FIFO, and with every detected gap filled.
    """
    network, producer, consumer = _network(retention=16)
    detector = network.enable_failure_detection(
        heartbeat_interval=0.5,
        lease_timeout=1.2,
        until=network.now + TOTAL_PUBLISHES * 0.2 + 2.0,
    )
    for index in range(TOTAL_PUBLISHES):
        if index == crash_after:
            network.crash_broker("B1")
        producer.publish({"topic": "news", "n": index})
        network.run_for(0.2)
    if crash_after == TOTAL_PUBLISHES:
        network.crash_broker("B1")
    network.settle()

    assert detector.detections and detector.detections[0][1] == "B1"
    received = [record.notification.attributes["n"] for record in consumer.received]
    assert received == list(range(TOTAL_PUBLISHES))
    assert consumer.unfilled_gap_ranges() == []
    filter_ = Filter({"topic": "news"})
    assert check_completeness(network.trace, "consumer", filter_).complete
    assert check_no_duplicates(network.trace, "consumer").clean
    assert check_fifo(network.trace, "consumer").ordered
    network.close()


def test_crash_sweep_without_retention_shows_the_gap():
    """Control: the same crash *without* retention does lose in flight
    notifications — the window the tentpole closes is real."""
    network, producer, consumer = _network(retention=None)
    network.enable_failure_detection(
        heartbeat_interval=0.5, lease_timeout=1.2, until=network.now + 3.0
    )
    network.crash_broker("B1")
    for index in range(3):
        producer.publish({"topic": "news", "n": index})
    network.settle()
    assert consumer.border_broker is network.broker("B2")
    assert consumer.received == []  # the in-flight window died with B1
    network.close()
